//! # h2o-expr — queries, expressions and the interpreted generic operator
//!
//! This crate defines the logical query language H2O's evaluation exercises
//! (select-project-aggregate over one wide relation, SIGMOD 2014 §2.2/§4.2.1):
//!
//! * [`Expr`] — arithmetic expressions over attributes (`a + b + c`),
//! * [`Predicate`]/[`Conjunction`] — conjunctive range filters
//!   (`d < v1 and e > v2`),
//! * [`Aggregate`] — `sum`/`min`/`max`/`count`/`avg` over expressions,
//! * [`Query`] — the select-project-aggregate statement with the paper's
//!   three templates (projection, aggregation, arithmetic expression) plus
//!   grouped aggregation ([`Query::grouped`], beyond the paper's
//!   evaluation),
//! * [`QueryResult`] — row-major output blocks ("all execution strategies
//!   materialize the output results ... in a row-major layout", §3.3),
//! * [`GroupedAggs`] — the grouped-aggregation hash
//!   state every strategy folds through; output rows are emitted sorted
//!   ascending by key vector so all strategies (and morsel-parallel
//!   execution, which merges per-morsel tables) agree bit-for-bit.
//!
//! It also implements the **generic operator** ([`interp`]): a
//! tuple-at-a-time interpreter that evaluates any query over any set of
//! column groups through dynamic dispatch on the expression tree. This is
//! the baseline that the paper's *generated code* beats in Fig. 14 — the
//! interpretation overhead it embodies is exactly what the specialized
//! kernels in `h2o-exec` remove.
//!
//! # Typed values on a fixed lane
//!
//! Every value the engine stores or computes is a 64-bit lane word typed
//! by the schema ([`h2o_storage::LogicalType`]): `i64`, `f64` (bit
//! pattern) or a dictionary code. [`Datum`] is the typed boundary —
//! constants in queries, decoded result cells — and [`typecheck::check`]
//! is the plan-time gate that rejects cross-type predicates and
//! arithmetic ([`QueryError::TypeMismatch`]): there are no implicit
//! coercions anywhere in the engine.
//!
//! Determinism is engine-wide and typed: integer arithmetic is wrapping;
//! `f64` comparisons, min/max and grouped-key ordering follow
//! [`f64::total_cmp`] (via the comparator-key mapping in `h2o-storage`);
//! `f64` sums fold in row order within a morsel and merge in morsel order.
//! Every execution strategy — interpreted, volcano, vectorized, fused —
//! therefore produces bit-identical results and can be
//! differential-tested against this interpreter.

pub mod agg;
pub mod datum;
pub mod expr;
pub mod grouped;
pub mod interp;
pub mod join;
pub mod predicate;
pub mod query;
pub mod result;
pub mod typecheck;
pub mod wire;

pub use agg::{AggFunc, AggOp, Aggregate};
pub use datum::Datum;
pub use expr::{ArithOp, Expr};
pub use grouped::GroupedAggs;
pub use interp::{interpret, interpret_join};
pub use join::{JoinBuilder, JoinQuery, RelRef, Side};
pub use predicate::{CmpOp, Conjunction, Predicate};
pub use query::{Query, QueryError};
pub use result::QueryResult;
pub use typecheck::{check_join, JoinTypes, QueryTypes, TypedPredicate};
pub use wire::{
    join_from_json, join_to_json, query_from_json, query_to_json, result_to_json, Json, WireError,
};
