//! # h2o-expr — queries, expressions and the interpreted generic operator
//!
//! This crate defines the logical query language H2O's evaluation exercises
//! (select-project-aggregate over one wide relation, SIGMOD 2014 §2.2/§4.2.1):
//!
//! * [`Expr`] — arithmetic expressions over attributes (`a + b + c`),
//! * [`Predicate`]/[`Conjunction`] — conjunctive range filters
//!   (`d < v1 and e > v2`),
//! * [`Aggregate`] — `sum`/`min`/`max`/`count`/`avg` over expressions,
//! * [`Query`] — the select-project-aggregate statement with the paper's
//!   three templates (projection, aggregation, arithmetic expression) plus
//!   grouped aggregation ([`Query::grouped`], beyond the paper's
//!   evaluation),
//! * [`QueryResult`] — row-major output blocks ("all execution strategies
//!   materialize the output results ... in a row-major layout", §3.3),
//! * [`GroupedAggs`] — the grouped-aggregation hash
//!   state every strategy folds through; output rows are emitted sorted
//!   ascending by key vector so all strategies (and morsel-parallel
//!   execution, which merges per-morsel tables) agree bit-for-bit.
//!
//! It also implements the **generic operator** ([`interp`]): a
//! tuple-at-a-time interpreter that evaluates any query over any set of
//! column groups through dynamic dispatch on the expression tree. This is
//! the baseline that the paper's *generated code* beats in Fig. 14 — the
//! interpretation overhead it embodies is exactly what the specialized
//! kernels in `h2o-exec` remove.
//!
//! All engine arithmetic is wrapping (`i64`), so every execution strategy —
//! interpreted, volcano, vectorized, fused — produces bit-identical results
//! and can be differential-tested against this interpreter.

pub mod agg;
pub mod expr;
pub mod grouped;
pub mod interp;
pub mod predicate;
pub mod query;
pub mod result;

pub use agg::{AggFunc, Aggregate};
pub use expr::{ArithOp, Expr};
pub use grouped::GroupedAggs;
pub use interp::interpret;
pub use predicate::{CmpOp, Conjunction, Predicate};
pub use query::{Query, QueryError};
pub use result::QueryResult;
