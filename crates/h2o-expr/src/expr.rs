//! Arithmetic expressions over attributes.

use crate::datum::Datum;
use crate::query::QueryError;
use h2o_storage::{f64_lane, lane_f64, AttrId, AttrSet, LogicalType, Value};
use std::fmt;

/// A binary arithmetic operator. Integer arithmetic is wrapping and `f64`
/// arithmetic is IEEE-754 in evaluation order, so every execution strategy
/// in the engine agrees bit-for-bit (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
}

impl ArithOp {
    /// Applies the operator on `i64` lanes (wrapping).
    #[inline]
    pub fn apply(self, l: Value, r: Value) -> Value {
        match self {
            ArithOp::Add => l.wrapping_add(r),
            ArithOp::Sub => l.wrapping_sub(r),
            ArithOp::Mul => l.wrapping_mul(r),
        }
    }

    /// Applies the operator on `f64` lanes (bit patterns in, bit pattern
    /// out).
    #[inline]
    pub fn apply_f64(self, l: Value, r: Value) -> Value {
        let (l, r) = (lane_f64(l), lane_f64(r));
        f64_lane(match self {
            ArithOp::Add => l + r,
            ArithOp::Sub => l - r,
            ArithOp::Mul => l * r,
        })
    }

    /// Applies the operator on lanes of numeric type `ty`. Cross-type
    /// arithmetic is rejected at plan time, so an expression has one
    /// uniform numeric type and the dispatch hoists out of inner loops.
    #[inline]
    pub fn apply_lane(self, ty: LogicalType, l: Value, r: Value) -> Value {
        match ty {
            LogicalType::F64 => self.apply_f64(l, r),
            _ => self.apply(l, r),
        }
    }

    /// The SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
        }
    }
}

/// An arithmetic expression tree, e.g. `a + b + c` from the paper's query
/// `Q1: select a+b+c from R where d<v1 and e>v2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A reference to an attribute of the relation.
    Col(AttrId),
    /// A typed constant.
    Const(Datum),
    /// A binary operation.
    Binary {
        op: ArithOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col<A: Into<AttrId>>(a: A) -> Expr {
        Expr::Col(a.into())
    }

    /// Shorthand for a constant (`i64`, `f64` or string — see [`Datum`]).
    pub fn lit<D: Into<Datum>>(v: D) -> Expr {
        Expr::Const(v.into())
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder by design
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: ArithOp::Add,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder by design
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: ArithOp::Sub,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder by design
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: ArithOp::Mul,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// The left-deep sum `a0 + a1 + ... + ak` — the paper's template (iii)
    /// "select a + b + ... from R".
    pub fn sum_of<I: IntoIterator<Item = AttrId>>(attrs: I) -> Expr {
        let mut it = attrs.into_iter();
        let first = Expr::Col(it.next().expect("sum_of requires at least one attribute"));
        it.fold(first, |acc, a| acc.add(Expr::Col(a)))
    }

    /// Collects the attributes referenced by the expression into `out`.
    pub fn collect_attrs(&self, out: &mut AttrSet) {
        match self {
            Expr::Col(a) => {
                out.insert(*a);
            }
            Expr::Const(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_attrs(out);
                rhs.collect_attrs(out);
            }
        }
    }

    /// The attributes referenced by the expression.
    pub fn attrs(&self) -> AttrSet {
        let mut s = AttrSet::new();
        self.collect_attrs(&mut s);
        s
    }

    /// Number of nodes in the tree (a proxy for interpretation overhead;
    /// used by the cost model's CPU term).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Col(_) | Expr::Const(_) => 1,
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
        }
    }

    /// Evaluates the expression over **`i64` lanes** with attribute values
    /// supplied by `fetch` — shorthand for
    /// [`eval_lane`](Self::eval_lane)`(LogicalType::I64, fetch)`, the
    /// correct evaluator for the all-integer relations of the paper's
    /// evaluation. Typed callers (the interpreter) resolve the
    /// expression's type first and use [`Self::eval_lane`].
    pub fn eval<F: Fn(AttrId) -> Value + Copy>(&self, fetch: F) -> Value {
        self.eval_lane(LogicalType::I64, fetch)
    }

    /// Evaluates the expression over lane words of the (uniform, already
    /// type-checked) numeric type `ty`. This *is* the interpretation
    /// overhead the paper's generated code removes: one virtual walk of
    /// the tree per tuple.
    pub fn eval_lane<F: Fn(AttrId) -> Value + Copy>(&self, ty: LogicalType, fetch: F) -> Value {
        match self {
            Expr::Col(a) => fetch(*a),
            Expr::Const(d) => d.numeric_lane(),
            Expr::Binary { op, lhs, rhs } => {
                op.apply_lane(ty, lhs.eval_lane(ty, fetch), rhs.eval_lane(ty, fetch))
            }
        }
    }

    /// Infers the expression's [`LogicalType`] given per-attribute types,
    /// rejecting everything the engine's strict typing forbids: cross-type
    /// arithmetic (there are no implicit coercions), arithmetic over
    /// dictionary-encoded attributes, and string literals outside
    /// predicates. A pure-constant expression types as its constants.
    pub fn type_of<F>(&self, ty_of: &F) -> Result<LogicalType, QueryError>
    where
        F: Fn(AttrId) -> Result<LogicalType, QueryError>,
    {
        match self {
            Expr::Col(a) => ty_of(*a),
            Expr::Const(d) => match d {
                Datum::Str(_) => Err(QueryError::TypeMismatch(format!(
                    "string literal {d} is only allowed as a predicate constant"
                ))),
                _ => Ok(d.logical()),
            },
            Expr::Binary { op, lhs, rhs } => {
                let lt = lhs.type_of(ty_of)?;
                let rt = rhs.type_of(ty_of)?;
                if lt != rt {
                    return Err(QueryError::TypeMismatch(format!(
                        "arithmetic ({lhs} {} {rhs}) mixes {} and {} operands \
                         (the engine has no implicit casts)",
                        op.symbol(),
                        lt.name(),
                        rt.name()
                    )));
                }
                if !lt.is_numeric() {
                    return Err(QueryError::TypeMismatch(format!(
                        "arithmetic ({lhs} {} {rhs}) over dictionary-encoded \
                         operands is undefined",
                        op.symbol()
                    )));
                }
                Ok(lt)
            }
        }
    }

    /// Whether the expression is a bare column reference.
    pub fn as_col(&self) -> Option<AttrId> {
        match self {
            Expr::Col(a) => Some(*a),
            _ => None,
        }
    }

    /// Whether the expression is a left-deep sum of distinct columns
    /// (`a + b + ... + k`). The specialized kernels fast-path this shape,
    /// mirroring the paper's generated code for Q1 (Figs. 5–6). Returns the
    /// columns in order if so.
    pub fn as_column_sum(&self) -> Option<Vec<AttrId>> {
        fn walk(e: &Expr, out: &mut Vec<AttrId>) -> bool {
            match e {
                Expr::Col(a) => {
                    out.push(*a);
                    true
                }
                Expr::Binary {
                    op: ArithOp::Add,
                    lhs,
                    rhs,
                } => walk(lhs, out) && walk(rhs, out),
                _ => false,
            }
        }
        let mut cols = Vec::new();
        if walk(self, &mut cols) {
            Some(cols)
        } else {
            None
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(a) => write!(f, "{a}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_ops_wrap() {
        assert_eq!(ArithOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(ArithOp::Sub.apply(i64::MIN, 1), i64::MAX);
        assert_eq!(ArithOp::Mul.apply(3, 4), 12);
    }

    #[test]
    fn eval_walks_tree() {
        // (a0 + a1) * 2 - a2
        let e = Expr::col(0u32)
            .add(Expr::col(1u32))
            .mul(Expr::lit(2))
            .sub(Expr::col(2u32));
        let vals = [5, 7, 3];
        let got = e.eval(|a| vals[a.index()]);
        assert_eq!(got, (5 + 7) * 2 - 3);
    }

    #[test]
    fn attrs_collected() {
        let e = Expr::col(3u32).add(Expr::col(9u32).mul(Expr::lit(2)));
        let attrs = e.attrs();
        assert_eq!(attrs.len(), 2);
        assert!(attrs.contains(AttrId(3)));
        assert!(attrs.contains(AttrId(9)));
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn sum_of_builds_left_deep_chain() {
        let e = Expr::sum_of([AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(e.eval(|a| a.index() as i64 + 1), 6);
        assert_eq!(
            e.as_column_sum().unwrap(),
            vec![AttrId(0), AttrId(1), AttrId(2)]
        );
        assert_eq!(format!("{e}"), "((a0 + a1) + a2)");
    }

    #[test]
    fn column_sum_detection_rejects_other_shapes() {
        assert!(Expr::col(0u32)
            .mul(Expr::col(1u32))
            .as_column_sum()
            .is_none());
        assert!(Expr::col(0u32).add(Expr::lit(1)).as_column_sum().is_none());
        assert_eq!(Expr::col(4u32).as_column_sum().unwrap(), vec![AttrId(4)]);
    }

    #[test]
    fn as_col() {
        assert_eq!(Expr::col(2u32).as_col(), Some(AttrId(2)));
        assert_eq!(Expr::lit(1).as_col(), None);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn sum_of_empty_panics() {
        Expr::sum_of(Vec::<AttrId>::new());
    }
}
