//! Arithmetic expressions over attributes.

use h2o_storage::{AttrId, AttrSet, Value};
use std::fmt;

/// A binary arithmetic operator. All arithmetic is wrapping so that every
/// execution strategy in the engine agrees bit-for-bit (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
}

impl ArithOp {
    /// Applies the operator.
    #[inline]
    pub fn apply(self, l: Value, r: Value) -> Value {
        match self {
            ArithOp::Add => l.wrapping_add(r),
            ArithOp::Sub => l.wrapping_sub(r),
            ArithOp::Mul => l.wrapping_mul(r),
        }
    }

    /// The SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
        }
    }
}

/// An arithmetic expression tree, e.g. `a + b + c` from the paper's query
/// `Q1: select a+b+c from R where d<v1 and e>v2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A reference to an attribute of the relation.
    Col(AttrId),
    /// A constant.
    Const(Value),
    /// A binary operation.
    Binary {
        op: ArithOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col<A: Into<AttrId>>(a: A) -> Expr {
        Expr::Col(a.into())
    }

    /// Shorthand for a constant.
    pub fn lit(v: Value) -> Expr {
        Expr::Const(v)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder by design
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: ArithOp::Add,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// `self - rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder by design
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: ArithOp::Sub,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// `self * rhs`.
    #[allow(clippy::should_implement_trait)] // fluent builder by design
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: ArithOp::Mul,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// The left-deep sum `a0 + a1 + ... + ak` — the paper's template (iii)
    /// "select a + b + ... from R".
    pub fn sum_of<I: IntoIterator<Item = AttrId>>(attrs: I) -> Expr {
        let mut it = attrs.into_iter();
        let first = Expr::Col(it.next().expect("sum_of requires at least one attribute"));
        it.fold(first, |acc, a| acc.add(Expr::Col(a)))
    }

    /// Collects the attributes referenced by the expression into `out`.
    pub fn collect_attrs(&self, out: &mut AttrSet) {
        match self {
            Expr::Col(a) => {
                out.insert(*a);
            }
            Expr::Const(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_attrs(out);
                rhs.collect_attrs(out);
            }
        }
    }

    /// The attributes referenced by the expression.
    pub fn attrs(&self) -> AttrSet {
        let mut s = AttrSet::new();
        self.collect_attrs(&mut s);
        s
    }

    /// Number of nodes in the tree (a proxy for interpretation overhead;
    /// used by the cost model's CPU term).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Col(_) | Expr::Const(_) => 1,
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
        }
    }

    /// Evaluates the expression with attribute values supplied by `fetch`.
    /// This *is* the interpretation overhead the paper's generated code
    /// removes: one virtual walk of the tree per tuple.
    pub fn eval<F: Fn(AttrId) -> Value + Copy>(&self, fetch: F) -> Value {
        match self {
            Expr::Col(a) => fetch(*a),
            Expr::Const(v) => *v,
            Expr::Binary { op, lhs, rhs } => op.apply(lhs.eval(fetch), rhs.eval(fetch)),
        }
    }

    /// Whether the expression is a bare column reference.
    pub fn as_col(&self) -> Option<AttrId> {
        match self {
            Expr::Col(a) => Some(*a),
            _ => None,
        }
    }

    /// Whether the expression is a left-deep sum of distinct columns
    /// (`a + b + ... + k`). The specialized kernels fast-path this shape,
    /// mirroring the paper's generated code for Q1 (Figs. 5–6). Returns the
    /// columns in order if so.
    pub fn as_column_sum(&self) -> Option<Vec<AttrId>> {
        fn walk(e: &Expr, out: &mut Vec<AttrId>) -> bool {
            match e {
                Expr::Col(a) => {
                    out.push(*a);
                    true
                }
                Expr::Binary {
                    op: ArithOp::Add,
                    lhs,
                    rhs,
                } => walk(lhs, out) && walk(rhs, out),
                _ => false,
            }
        }
        let mut cols = Vec::new();
        if walk(self, &mut cols) {
            Some(cols)
        } else {
            None
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(a) => write!(f, "{a}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_ops_wrap() {
        assert_eq!(ArithOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(ArithOp::Sub.apply(i64::MIN, 1), i64::MAX);
        assert_eq!(ArithOp::Mul.apply(3, 4), 12);
    }

    #[test]
    fn eval_walks_tree() {
        // (a0 + a1) * 2 - a2
        let e = Expr::col(0u32)
            .add(Expr::col(1u32))
            .mul(Expr::lit(2))
            .sub(Expr::col(2u32));
        let vals = [5, 7, 3];
        let got = e.eval(|a| vals[a.index()]);
        assert_eq!(got, (5 + 7) * 2 - 3);
    }

    #[test]
    fn attrs_collected() {
        let e = Expr::col(3u32).add(Expr::col(9u32).mul(Expr::lit(2)));
        let attrs = e.attrs();
        assert_eq!(attrs.len(), 2);
        assert!(attrs.contains(AttrId(3)));
        assert!(attrs.contains(AttrId(9)));
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn sum_of_builds_left_deep_chain() {
        let e = Expr::sum_of([AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(e.eval(|a| a.index() as i64 + 1), 6);
        assert_eq!(
            e.as_column_sum().unwrap(),
            vec![AttrId(0), AttrId(1), AttrId(2)]
        );
        assert_eq!(format!("{e}"), "((a0 + a1) + a2)");
    }

    #[test]
    fn column_sum_detection_rejects_other_shapes() {
        assert!(Expr::col(0u32)
            .mul(Expr::col(1u32))
            .as_column_sum()
            .is_none());
        assert!(Expr::col(0u32).add(Expr::lit(1)).as_column_sum().is_none());
        assert_eq!(Expr::col(4u32).as_column_sum().unwrap(), vec![AttrId(4)]);
    }

    #[test]
    fn as_col() {
        assert_eq!(Expr::col(2u32).as_col(), Some(AttrId(2)));
        assert_eq!(Expr::lit(1).as_col(), None);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn sum_of_empty_panics() {
        Expr::sum_of(Vec::<AttrId>::new());
    }
}
