//! Aggregate functions over expressions.
//!
//! The paper's micro-benchmarks aggregate to "minimize the number of tuples
//! returned from the DBMS" (§2.2); template (ii) is
//! `select max(a), max(b), ... from R where <predicates>`.

use crate::expr::Expr;
use h2o_storage::{f64_lane, lane_f64, LogicalType, Value};
use std::fmt;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Sum,
    Min,
    Max,
    Count,
    /// Integer average: `sum / count` with truncation, `0` for empty input —
    /// deterministic so all execution strategies agree.
    Avg,
}

impl AggFunc {
    /// The SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate select-item: `func(expr)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Aggregate {
    pub func: AggFunc,
    pub expr: Expr,
}

impl Aggregate {
    /// Creates an aggregate.
    pub fn new(func: AggFunc, expr: Expr) -> Self {
        Aggregate { func, expr }
    }

    /// `sum(expr)`.
    pub fn sum(expr: Expr) -> Self {
        Self::new(AggFunc::Sum, expr)
    }

    /// `max(expr)`.
    pub fn max(expr: Expr) -> Self {
        Self::new(AggFunc::Max, expr)
    }

    /// `min(expr)`.
    pub fn min(expr: Expr) -> Self {
        Self::new(AggFunc::Min, expr)
    }

    /// `count(*)` (the expression is ignored but kept for uniformity).
    pub fn count() -> Self {
        Self::new(AggFunc::Count, Expr::lit(1))
    }

    /// `avg(expr)`.
    pub fn avg(expr: Expr) -> Self {
        Self::new(AggFunc::Avg, expr)
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.func.name(), self.expr)
    }
}

/// A fully typed aggregate operation: the function plus the logical type
/// of its input lanes. This is what compiled programs carry — the kernels'
/// inner loops dispatch on it once, outside the row loop.
///
/// `From<AggFunc>` supplies the `I64` default, so `AggState::new(AggFunc::
/// Sum)` keeps meaning what it always did for the paper's all-integer
/// relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AggOp {
    pub func: AggFunc,
    /// Type of the aggregate's *input* expression. Must be numeric except
    /// for `count`, whose input is ignored.
    pub ty: LogicalType,
}

impl AggOp {
    /// Creates a typed aggregate op.
    pub fn new(func: AggFunc, ty: LogicalType) -> Self {
        AggOp { func, ty }
    }

    /// The logical type of the aggregate's **output** lane: `count` is
    /// always `I64`; everything else preserves its input type.
    pub fn output_type(self) -> LogicalType {
        match self.func {
            AggFunc::Count => LogicalType::I64,
            _ => self.ty,
        }
    }
}

impl From<AggFunc> for AggOp {
    fn from(func: AggFunc) -> Self {
        AggOp {
            func,
            ty: LogicalType::I64,
        }
    }
}

/// Running state for one aggregate. Every execution strategy — interpreted,
/// volcano, vectorized, fused kernels — folds tuples through this same
/// accumulator, which is what guarantees identical results across layouts.
///
/// # Typed accumulation
///
/// `sum`/`avg` accumulate in the input's numeric domain (`i64` wrapping, or
/// IEEE-754 `f64` in fold order). `min`/`max` accumulate **comparator
/// keys** ([`LogicalType::cmp_key`]): the running extremum is kept in key
/// space where comparison is one integer instruction for every type, and
/// [`AggState::finish`] maps it back (the key function is an involution).
/// For `F64` this realizes `total_cmp` min/max exactly.
///
/// # The fold-order contract
///
/// Every accumulator except the `F64` sum is **associative and
/// commutative** in its lane domain — wrapping `i64` addition, key-space
/// `min`/`max`, counting — so kernels may fold qualifying values in any
/// order (including split across SIMD lanes) and still produce the exact
/// state a sequential row-order fold would. The `F64` sum is the one
/// exception: IEEE-754 addition does not associate (`(1e16 + 1.0) + 1.0 ≠
/// 1e16 + (1.0 + 1.0)`), so its fold order is pinned to **ascending row
/// order within a morsel, morsel order across morsels**. Vectorized
/// kernels therefore lane-split integer sums and min/max freely but keep
/// `F64` sums as one in-order scalar chain per morsel, vectorizing only
/// the qualifying-row scan around them (see `h2o-exec`'s
/// `kernels::simd`). The `f64_sum_fold_order_is_pinned` test nails the
/// contract down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggState {
    op: AggOp,
    /// Sum accumulator in the input's lane domain (`f64` bit pattern for
    /// `F64` inputs).
    sum: Value,
    /// Running minimum in comparator-key space.
    min: Value,
    /// Running maximum in comparator-key space.
    max: Value,
    count: u64,
}

impl AggState {
    /// Fresh accumulator for `op` (a bare [`AggFunc`] defaults to `I64`
    /// input lanes).
    pub fn new<O: Into<AggOp>>(op: O) -> Self {
        AggState {
            op: op.into(),
            sum: 0, // 0i64, and also the bit pattern of +0.0f64
            min: Value::MAX,
            max: Value::MIN,
            count: 0,
        }
    }

    /// Folds one input lane. Only the fields the function needs are
    /// maintained — this runs once per (aggregate, qualifying tuple) in
    /// every kernel's inner loop, so a `max(..)` must cost a compare, not
    /// a compare plus three unrelated updates.
    #[inline(always)]
    pub fn update(&mut self, v: Value) {
        match self.op.func {
            AggFunc::Sum => self.sum = self.add_to_sum(v),
            AggFunc::Min => {
                self.min = self.min.min(self.op.ty.cmp_key(v));
                self.count += 1;
            }
            AggFunc::Max => {
                self.max = self.max.max(self.op.ty.cmp_key(v));
                self.count += 1;
            }
            AggFunc::Count => self.count += 1,
            AggFunc::Avg => {
                self.sum = self.add_to_sum(v);
                self.count += 1;
            }
        }
    }

    /// Folds one input lane `n` times — **bit-identical** to calling
    /// [`Self::update`] `n` times with the same `v`, at `O(1)` cost for
    /// every function except the `F64` sum. This is the factorized-
    /// aggregation primitive of join-aggregate fusion: a probe row whose
    /// key matches `n` build rows contributes `n` identical updates, which
    /// collapse to one `update_n`.
    ///
    /// Integer sums use `v * n` (exact modulo 2^64, same bits as `n`
    /// wrapping adds); min/max/count fold the extremum once and advance
    /// the count by `n`. The `F64` sum is the one accumulator whose fold
    /// order is pinned (module docs), and repeated addition of the same
    /// value is *not* expressible as one multiply under IEEE-754 rounding
    /// — so it performs the `n` additions sequentially, preserving the
    /// exact bit pattern of the unfused loop.
    #[inline]
    pub fn update_n(&mut self, v: Value, n: u64) {
        if n == 0 {
            return;
        }
        match self.op.func {
            AggFunc::Sum => self.sum = self.add_n_to_sum(v, n),
            AggFunc::Min => {
                self.min = self.min.min(self.op.ty.cmp_key(v));
                self.count += n;
            }
            AggFunc::Max => {
                self.max = self.max.max(self.op.ty.cmp_key(v));
                self.count += n;
            }
            AggFunc::Count => self.count += n,
            AggFunc::Avg => {
                self.sum = self.add_n_to_sum(v, n);
                self.count += n;
            }
        }
    }

    #[inline(always)]
    fn add_to_sum(&self, v: Value) -> Value {
        match self.op.ty {
            LogicalType::F64 => f64_lane(lane_f64(self.sum) + lane_f64(v)),
            _ => self.sum.wrapping_add(v),
        }
    }

    #[inline]
    fn add_n_to_sum(&self, v: Value, n: u64) -> Value {
        match self.op.ty {
            LogicalType::F64 => {
                // n sequential additions: IEEE-754 rounding makes a + n*v
                // differ from ((a+v)+v)+... in general, and the fused path
                // must be bit-identical to the unfused per-pair loop.
                let mut a = lane_f64(self.sum);
                let x = lane_f64(v);
                for _ in 0..n {
                    a += x;
                }
                f64_lane(a)
            }
            _ => self.sum.wrapping_add(v.wrapping_mul(n as Value)),
        }
    }

    /// Merges another accumulator. This is the combine step of parallel
    /// execution: each morsel folds its rows into a private `AggState` and
    /// the partials are merged in morsel order. The integer merge
    /// operations — wrapping sum, key-space min/max, count addition — are
    /// associative with `AggState::new` as identity, so any grouping of
    /// morsels yields the same final state as a single sequential fold.
    /// `f64` sums are merged in morsel order (the engine-wide float
    /// determinism convention: ordered sums within a morsel, merge order
    /// pinned by the scheduler; the workload generators draw doubles from
    /// dyadic grids so these sums are exact and association-independent —
    /// the differential tests assert bit-identical results).
    pub fn merge(&mut self, other: &AggState) {
        debug_assert_eq!(self.op, other.op);
        self.sum = self.add_to_sum(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Reconstructs an accumulator from a kernel's raw partial: `raw` is
    /// the specialized loop's accumulator value — the sum lane for
    /// `sum`/`avg`, the extremum **in comparator-key space** for
    /// `min`/`max` (identical to the raw lane for `I64`), ignored for
    /// `count` — and `count` the number of folded values. Bridges the
    /// offset-specialized kernels — which accumulate into flat `Value`
    /// slots rather than `AggState`s — into the mergeable form the
    /// parallel driver combines.
    pub fn from_parts<O: Into<AggOp>>(op: O, raw: Value, count: u64) -> AggState {
        let mut st = AggState::new(op);
        st.count = count;
        match st.op.func {
            AggFunc::Sum | AggFunc::Avg => st.sum = raw,
            AggFunc::Min => st.min = raw,
            AggFunc::Max => st.max = raw,
            AggFunc::Count => {}
        }
        st
    }

    /// Finishes the aggregate into an output lane. Empty-input results are
    /// the zero lane for every function and type (`0` / `0.0` — SQL would
    /// say NULL; the engine has no nulls, and all strategies agree on this
    /// convention).
    pub fn finish(&self) -> Value {
        match self.op.func {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as Value,
            AggFunc::Min => {
                if self.count == 0 {
                    0
                } else {
                    // cmp_key is an involution: map the key back to a lane.
                    self.op.ty.cmp_key(self.min)
                }
            }
            AggFunc::Max => {
                if self.count == 0 {
                    0
                } else {
                    self.op.ty.cmp_key(self.max)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    0
                } else {
                    match self.op.ty {
                        LogicalType::F64 => f64_lane(lane_f64(self.sum) / self.count as f64),
                        _ => self.sum.wrapping_div(self.count as Value),
                    }
                }
            }
        }
    }

    /// Number of folded values (not maintained for `sum` accumulators,
    /// which do not need it).
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(func: AggFunc, vals: &[Value]) -> Value {
        // Bare-AggFunc construction pins the I64 default.
        let mut s = AggState::new(func);
        for &v in vals {
            s.update(v);
        }
        s.finish()
    }

    #[test]
    fn basic_aggregates() {
        let vals = [3, -1, 7, 7, 0];
        assert_eq!(fold(AggFunc::Sum, &vals), 16);
        assert_eq!(fold(AggFunc::Min, &vals), -1);
        assert_eq!(fold(AggFunc::Max, &vals), 7);
        assert_eq!(fold(AggFunc::Count, &vals), 5);
        assert_eq!(fold(AggFunc::Avg, &vals), 3); // 16/5 truncated
    }

    #[test]
    fn empty_input_conventions() {
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            assert_eq!(fold(f, &[]), 0, "{}", f.name());
        }
    }

    #[test]
    fn merge_equals_sequential_fold() {
        let vals = [5, -3, 12, 9, -20, 1];
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            let mut left = AggState::new(f);
            let mut right = AggState::new(f);
            for &v in &vals[..3] {
                left.update(v);
            }
            for &v in &vals[3..] {
                right.update(v);
            }
            left.merge(&right);
            assert_eq!(left.finish(), fold(f, &vals), "{}", f.name());
        }
    }

    #[test]
    fn merge_with_empty_side_is_identity() {
        let vals = [4, -9, 2];
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            let mut folded = AggState::new(f);
            for &v in &vals {
                folded.update(v);
            }
            // empty ∪ folded
            let mut left = AggState::new(f);
            left.merge(&folded);
            assert_eq!(left.finish(), folded.finish(), "{} left-identity", f.name());
            // folded ∪ empty
            let mut right = folded;
            right.merge(&AggState::new(f));
            assert_eq!(
                right.finish(),
                folded.finish(),
                "{} right-identity",
                f.name()
            );
        }
    }

    #[test]
    fn merge_is_associative_over_any_split() {
        let vals: Vec<Value> = (0..37).map(|i| (i * 31 % 17) - 8).collect();
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            let want = fold(f, &vals);
            for chunk in [1usize, 2, 5, 7, 36, 64] {
                let mut total = AggState::new(f);
                for part in vals.chunks(chunk) {
                    let mut partial = AggState::new(f);
                    for &v in part {
                        partial.update(v);
                    }
                    total.merge(&partial);
                }
                assert_eq!(total.finish(), want, "{} chunk={chunk}", f.name());
            }
        }
    }

    #[test]
    fn from_parts_round_trips_specialized_accumulators() {
        // (func, raw accumulator, count, expected finish)
        let cases = [
            (AggFunc::Sum, 42, 3, 42),
            (AggFunc::Avg, 10, 4, 2),
            (AggFunc::Min, -7, 2, -7),
            (AggFunc::Max, 9, 2, 9),
            (AggFunc::Count, 0, 5, 5),
        ];
        for (f, raw, count, want) in cases {
            assert_eq!(
                AggState::from_parts(f, raw, count).finish(),
                want,
                "{}",
                f.name()
            );
        }
        // Empty partials carry the neutral accumulator and merge as identity.
        let empty_min = AggState::from_parts(AggFunc::Min, Value::MAX, 0);
        let mut real = AggState::from_parts(AggFunc::Min, 5, 1);
        real.merge(&empty_min);
        assert_eq!(real.finish(), 5);
        assert_eq!(empty_min.finish(), 0, "empty-input convention preserved");
    }

    #[test]
    fn avg_truncates_toward_zero() {
        assert_eq!(fold(AggFunc::Avg, &[-3, -4]), -3); // -7/2 = -3 (trunc)
    }

    fn fold_f64(func: AggFunc, vals: &[f64]) -> Value {
        let mut s = AggState::new(AggOp::new(func, LogicalType::F64));
        for &v in vals {
            s.update(f64_lane(v));
        }
        s.finish()
    }

    #[test]
    fn f64_aggregates() {
        let vals = [1.5, -2.25, 4.0, 0.25];
        assert_eq!(lane_f64(fold_f64(AggFunc::Sum, &vals)), 3.5);
        assert_eq!(lane_f64(fold_f64(AggFunc::Min, &vals)), -2.25);
        assert_eq!(lane_f64(fold_f64(AggFunc::Max, &vals)), 4.0);
        assert_eq!(fold_f64(AggFunc::Count, &vals), 4);
        assert_eq!(lane_f64(fold_f64(AggFunc::Avg, &vals)), 0.875);
        // Empty input: zero lane == +0.0 for every function.
        for f in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            assert_eq!(fold_f64(f, &[]), 0, "{}", f.name());
        }
    }

    #[test]
    fn f64_min_max_follow_total_cmp() {
        // total_cmp order: -NaN < -inf < -0.0 < +0.0 < +inf < +NaN.
        let vals = [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN];
        let min = lane_f64(fold_f64(AggFunc::Min, &vals));
        let max = lane_f64(fold_f64(AggFunc::Max, &vals));
        assert_eq!(min, f64::NEG_INFINITY);
        assert!(max.is_nan(), "positive NaN is the total_cmp maximum");
        // Signed zeros are distinguished.
        let min0 = fold_f64(AggFunc::Min, &[0.0, -0.0]);
        assert_eq!(lane_f64(min0).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn f64_merge_matches_sequential_fold_on_dyadic_grid() {
        // Dyadic-grid doubles (k * 2^-10): sums are exact, so any morsel
        // split merges to the bit-identical total.
        let vals: Vec<f64> = (0..100)
            .map(|i| ((i * 37 % 83) as f64 - 41.0) / 1024.0)
            .collect();
        for f in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            let want = fold_f64(f, &vals);
            for chunk in [1usize, 3, 7, 64] {
                let mut total = AggState::new(AggOp::new(f, LogicalType::F64));
                for part in vals.chunks(chunk) {
                    let mut p = AggState::new(AggOp::new(f, LogicalType::F64));
                    for &v in part {
                        p.update(f64_lane(v));
                    }
                    total.merge(&p);
                }
                assert_eq!(total.finish(), want, "{} chunk={chunk}", f.name());
            }
        }
    }

    #[test]
    fn f64_sum_fold_order_is_pinned() {
        // 1e16 absorbs a lone 1.0 (1e16 + 1.0 == 1e16 in f64), but not
        // 2.0. A row-order fold of [1e16, 1.0, 1.0] must therefore yield
        // exactly 1e16, while the reassociated 1e16 + (1.0 + 1.0) would
        // yield 1e16 + 2. Any kernel that lane-splits an F64 sum breaks
        // this assertion — which is why none may (fold-order contract).
        let row_order = fold_f64(AggFunc::Sum, &[1e16, 1.0, 1.0]);
        assert_eq!(lane_f64(row_order), 1e16);
        let reassociated = 1e16 + (1.0 + 1.0);
        assert_ne!(lane_f64(row_order), reassociated);
        // Wrapping i64 sums, by contrast, are order-free: any permutation
        // and grouping gives the same bits.
        assert_eq!(
            fold(AggFunc::Sum, &[i64::MAX, 1, 5]),
            fold(AggFunc::Sum, &[5, 1, i64::MAX]),
        );
    }

    #[test]
    fn update_n_is_bit_identical_to_repeated_update() {
        // Integer functions, including the wrapping edge.
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            for v in [0 as Value, 7, -3, i64::MAX, i64::MIN] {
                for n in [0u64, 1, 2, 5, 1000] {
                    let mut fused = AggState::new(f);
                    fused.update(13);
                    let mut looped = fused;
                    fused.update_n(v, n);
                    for _ in 0..n {
                        looped.update(v);
                    }
                    assert_eq!(fused, looped, "{} v={v} n={n}", f.name());
                }
            }
        }
        // F64 sums: repeated addition must keep the exact rounding of the
        // sequential loop (1e16 absorbs 1.0 once per add — a multiply
        // would not reproduce those bits).
        for f in [AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            for v in [1.0f64, 0.1, -2.5e15, f64::NAN] {
                for n in [0u64, 1, 3, 17] {
                    let op = AggOp::new(f, LogicalType::F64);
                    let mut fused = AggState::new(op);
                    fused.update(f64_lane(1e16));
                    let mut looped = fused;
                    fused.update_n(f64_lane(v), n);
                    for _ in 0..n {
                        looped.update(f64_lane(v));
                    }
                    assert_eq!(fused, looped, "{} v={v} n={n}", f.name());
                }
            }
        }
    }

    #[test]
    fn agg_op_output_types() {
        assert_eq!(
            AggOp::new(AggFunc::Count, LogicalType::F64).output_type(),
            LogicalType::I64
        );
        assert_eq!(
            AggOp::new(AggFunc::Sum, LogicalType::F64).output_type(),
            LogicalType::F64
        );
        assert_eq!(AggOp::from(AggFunc::Min).ty, LogicalType::I64);
    }

    #[test]
    fn display() {
        let a = Aggregate::max(Expr::col(3u32));
        assert_eq!(a.to_string(), "max(a3)");
        assert_eq!(Aggregate::count().func, AggFunc::Count);
    }

    #[test]
    fn sum_wraps() {
        assert_eq!(fold(AggFunc::Sum, &[i64::MAX, 1]), i64::MIN);
    }
}
