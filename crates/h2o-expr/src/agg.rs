//! Aggregate functions over expressions.
//!
//! The paper's micro-benchmarks aggregate to "minimize the number of tuples
//! returned from the DBMS" (§2.2); template (ii) is
//! `select max(a), max(b), ... from R where <predicates>`.

use crate::expr::Expr;
use h2o_storage::Value;
use std::fmt;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Sum,
    Min,
    Max,
    Count,
    /// Integer average: `sum / count` with truncation, `0` for empty input —
    /// deterministic so all execution strategies agree.
    Avg,
}

impl AggFunc {
    /// The SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate select-item: `func(expr)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Aggregate {
    pub func: AggFunc,
    pub expr: Expr,
}

impl Aggregate {
    /// Creates an aggregate.
    pub fn new(func: AggFunc, expr: Expr) -> Self {
        Aggregate { func, expr }
    }

    /// `sum(expr)`.
    pub fn sum(expr: Expr) -> Self {
        Self::new(AggFunc::Sum, expr)
    }

    /// `max(expr)`.
    pub fn max(expr: Expr) -> Self {
        Self::new(AggFunc::Max, expr)
    }

    /// `min(expr)`.
    pub fn min(expr: Expr) -> Self {
        Self::new(AggFunc::Min, expr)
    }

    /// `count(*)` (the expression is ignored but kept for uniformity).
    pub fn count() -> Self {
        Self::new(AggFunc::Count, Expr::lit(1))
    }

    /// `avg(expr)`.
    pub fn avg(expr: Expr) -> Self {
        Self::new(AggFunc::Avg, expr)
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.func.name(), self.expr)
    }
}

/// Running state for one aggregate. Every execution strategy — interpreted,
/// volcano, vectorized, fused kernels — folds tuples through this same
/// accumulator, which is what guarantees identical results across layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggState {
    func: AggFunc,
    sum: Value,
    min: Value,
    max: Value,
    count: u64,
}

impl AggState {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        AggState {
            func,
            sum: 0,
            min: Value::MAX,
            max: Value::MIN,
            count: 0,
        }
    }

    /// Folds one input value. Only the fields the function needs are
    /// maintained — this runs once per (aggregate, qualifying tuple) in
    /// every kernel's inner loop, so a `max(..)` must cost a compare, not
    /// a compare plus three unrelated updates.
    #[inline(always)]
    pub fn update(&mut self, v: Value) {
        match self.func {
            AggFunc::Sum => self.sum = self.sum.wrapping_add(v),
            AggFunc::Min => {
                self.min = self.min.min(v);
                self.count += 1;
            }
            AggFunc::Max => {
                self.max = self.max.max(v);
                self.count += 1;
            }
            AggFunc::Count => self.count += 1,
            AggFunc::Avg => {
                self.sum = self.sum.wrapping_add(v);
                self.count += 1;
            }
        }
    }

    /// Merges another accumulator. This is the combine step of parallel
    /// execution: each morsel folds its rows into a private `AggState` and
    /// the partials are merged in morsel order. All the merge operations —
    /// wrapping sum, min, max, count addition — are associative and have
    /// `AggState::new` as their identity, so any grouping of morsels yields
    /// the same final state as a single sequential fold (the parallel
    /// differential tests assert bit-identical results).
    pub fn merge(&mut self, other: &AggState) {
        debug_assert_eq!(self.func, other.func);
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// Reconstructs an accumulator from a kernel's raw partial: `raw` is the
    /// specialized loop's accumulator value (sum for `sum`/`avg`, the
    /// extremum for `min`/`max`, ignored for `count`) and `count` the number
    /// of folded values. Bridges the offset-specialized kernels — which
    /// accumulate into flat `Value` slots rather than `AggState`s — into the
    /// mergeable form the parallel driver combines.
    pub fn from_parts(func: AggFunc, raw: Value, count: u64) -> AggState {
        let mut st = AggState::new(func);
        st.count = count;
        match func {
            AggFunc::Sum | AggFunc::Avg => st.sum = raw,
            AggFunc::Min => st.min = raw,
            AggFunc::Max => st.max = raw,
            AggFunc::Count => {}
        }
        st
    }

    /// Finishes the aggregate. Empty-input results: `sum`/`count`/`avg` are
    /// `0`, `min`/`max` are `0` (SQL would say NULL; the engine has no
    /// nulls, and all strategies agree on this convention).
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as Value,
            AggFunc::Min => {
                if self.count == 0 {
                    0
                } else {
                    self.min
                }
            }
            AggFunc::Max => {
                if self.count == 0 {
                    0
                } else {
                    self.max
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    0
                } else {
                    self.sum.wrapping_div(self.count as Value)
                }
            }
        }
    }

    /// Number of folded values (not maintained for `sum` accumulators,
    /// which do not need it).
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(func: AggFunc, vals: &[Value]) -> Value {
        let mut s = AggState::new(func);
        for &v in vals {
            s.update(v);
        }
        s.finish()
    }

    #[test]
    fn basic_aggregates() {
        let vals = [3, -1, 7, 7, 0];
        assert_eq!(fold(AggFunc::Sum, &vals), 16);
        assert_eq!(fold(AggFunc::Min, &vals), -1);
        assert_eq!(fold(AggFunc::Max, &vals), 7);
        assert_eq!(fold(AggFunc::Count, &vals), 5);
        assert_eq!(fold(AggFunc::Avg, &vals), 3); // 16/5 truncated
    }

    #[test]
    fn empty_input_conventions() {
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            assert_eq!(fold(f, &[]), 0, "{}", f.name());
        }
    }

    #[test]
    fn merge_equals_sequential_fold() {
        let vals = [5, -3, 12, 9, -20, 1];
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            let mut left = AggState::new(f);
            let mut right = AggState::new(f);
            for &v in &vals[..3] {
                left.update(v);
            }
            for &v in &vals[3..] {
                right.update(v);
            }
            left.merge(&right);
            assert_eq!(left.finish(), fold(f, &vals), "{}", f.name());
        }
    }

    #[test]
    fn merge_with_empty_side_is_identity() {
        let vals = [4, -9, 2];
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            let mut folded = AggState::new(f);
            for &v in &vals {
                folded.update(v);
            }
            // empty ∪ folded
            let mut left = AggState::new(f);
            left.merge(&folded);
            assert_eq!(left.finish(), folded.finish(), "{} left-identity", f.name());
            // folded ∪ empty
            let mut right = folded;
            right.merge(&AggState::new(f));
            assert_eq!(
                right.finish(),
                folded.finish(),
                "{} right-identity",
                f.name()
            );
        }
    }

    #[test]
    fn merge_is_associative_over_any_split() {
        let vals: Vec<Value> = (0..37).map(|i| (i * 31 % 17) - 8).collect();
        for f in [
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
            AggFunc::Avg,
        ] {
            let want = fold(f, &vals);
            for chunk in [1usize, 2, 5, 7, 36, 64] {
                let mut total = AggState::new(f);
                for part in vals.chunks(chunk) {
                    let mut partial = AggState::new(f);
                    for &v in part {
                        partial.update(v);
                    }
                    total.merge(&partial);
                }
                assert_eq!(total.finish(), want, "{} chunk={chunk}", f.name());
            }
        }
    }

    #[test]
    fn from_parts_round_trips_specialized_accumulators() {
        // (func, raw accumulator, count, expected finish)
        let cases = [
            (AggFunc::Sum, 42, 3, 42),
            (AggFunc::Avg, 10, 4, 2),
            (AggFunc::Min, -7, 2, -7),
            (AggFunc::Max, 9, 2, 9),
            (AggFunc::Count, 0, 5, 5),
        ];
        for (f, raw, count, want) in cases {
            assert_eq!(
                AggState::from_parts(f, raw, count).finish(),
                want,
                "{}",
                f.name()
            );
        }
        // Empty partials carry the neutral accumulator and merge as identity.
        let empty_min = AggState::from_parts(AggFunc::Min, Value::MAX, 0);
        let mut real = AggState::from_parts(AggFunc::Min, 5, 1);
        real.merge(&empty_min);
        assert_eq!(real.finish(), 5);
        assert_eq!(empty_min.finish(), 0, "empty-input convention preserved");
    }

    #[test]
    fn avg_truncates_toward_zero() {
        assert_eq!(fold(AggFunc::Avg, &[-3, -4]), -3); // -7/2 = -3 (trunc)
    }

    #[test]
    fn display() {
        let a = Aggregate::max(Expr::col(3u32));
        assert_eq!(a.to_string(), "max(a3)");
        assert_eq!(Aggregate::count().func, AggFunc::Count);
    }

    #[test]
    fn sum_wraps() {
        assert_eq!(fold(AggFunc::Sum, &[i64::MAX, 1]), i64::MIN);
    }
}
