//! Multi-relation queries: the two-table equi-join shape.
//!
//! A [`JoinQuery`] binds two **named** relations, declares one or more
//! equi-join key pairs, carries a residual filter per side, and selects
//! through the same three shapes as a single-relation [`Query`](crate::Query):
//! projection, scalar aggregation, or grouped aggregation. The paper's
//! evaluation is single-relation (§2.2); joins are this reproduction's
//! extension of the adaptive story — the engine observes join-side access
//! patterns, so adaptive storage and join ordering co-evolve (see the
//! workspace README; the engine runs joins via
//! `h2o_core::Request::join` through `H2oEngine::run`).
//!
//! # The combined attribute space
//!
//! Select-clause expressions (projections, group keys, aggregate inputs)
//! reference a **combined** attribute space: the left relation's
//! attributes keep their ids, the right relation's attribute `j` becomes
//! `AttrId(left_width + j)`. Per-side filters and join keys stay in each
//! side's **local** space — they are evaluated before any tuple is
//! stitched. [`JoinQuery::side_of`] maps a combined id back to its side.
//!
//! Name resolution happens in [`JoinBuilder`]: unqualified names
//! ([`JoinBuilder::col`]) must be unique across both schemas
//! ([`QueryError::AmbiguousAttr`] otherwise); [`JoinBuilder::lcol`] /
//! [`JoinBuilder::rcol`] qualify explicitly.

use crate::agg::Aggregate;
use crate::expr::Expr;
use crate::predicate::Conjunction;
use crate::query::QueryError;
use h2o_storage::{AttrId, AttrSet, Schema};
use std::fmt;
use std::sync::Arc;

/// Which relation of a join a (combined-space) attribute belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    Left,
    Right,
}

impl Side {
    /// The other side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A named relation binding: the name the engine resolves against its
/// database snapshot, plus the schema the query was typed against.
#[derive(Debug, Clone)]
pub struct RelRef {
    name: String,
    schema: Arc<Schema>,
}

impl RelRef {
    /// The relation name as bound in the query.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema the query references this relation through.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }
}

/// A validated two-relation equi-join query. Construct through
/// [`JoinQuery::builder`] (or [`Query::join`](crate::Query::join)).
#[derive(Debug, Clone)]
pub struct JoinQuery {
    left: RelRef,
    right: RelRef,
    /// Equi-join key pairs, `(left-local, right-local)`. Never empty.
    on: Vec<(AttrId, AttrId)>,
    /// Residual filter over the left side, left-local attribute ids.
    left_filter: Conjunction,
    /// Residual filter over the right side, right-local attribute ids.
    right_filter: Conjunction,
    /// Select clause in **combined** space (see module docs). Exactly one
    /// of the three single-relation shapes, enforced at build time.
    projections: Vec<Expr>,
    aggregates: Vec<Aggregate>,
    group_by: Vec<Expr>,
}

impl JoinQuery {
    /// Starts building a join between two named relations.
    pub fn builder(left: (&str, Arc<Schema>), right: (&str, Arc<Schema>)) -> JoinBuilder {
        JoinBuilder {
            left: RelRef {
                name: left.0.to_string(),
                schema: left.1,
            },
            right: RelRef {
                name: right.0.to_string(),
                schema: right.1,
            },
            on: Vec::new(),
            left_filter: Conjunction::always(),
            right_filter: Conjunction::always(),
        }
    }

    /// The left relation binding.
    pub fn left(&self) -> &RelRef {
        &self.left
    }

    /// The right relation binding.
    pub fn right(&self) -> &RelRef {
        &self.right
    }

    /// The relation binding for `side`.
    pub fn rel(&self, side: Side) -> &RelRef {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// The equi-join key pairs, `(left-local, right-local)`. Non-empty.
    pub fn on(&self) -> &[(AttrId, AttrId)] {
        &self.on
    }

    /// The key attributes of `side`, local space, in `on` order.
    pub fn key_attrs(&self, side: Side) -> Vec<AttrId> {
        self.on
            .iter()
            .map(|&(l, r)| match side {
                Side::Left => l,
                Side::Right => r,
            })
            .collect()
    }

    /// The residual filter of `side`, local attribute ids.
    pub fn filter(&self, side: Side) -> &Conjunction {
        match side {
            Side::Left => &self.left_filter,
            Side::Right => &self.right_filter,
        }
    }

    /// Width of the left schema — the pivot of the combined attribute
    /// space: combined ids below it are left-local, the rest are
    /// `left_width + right-local`.
    pub fn left_width(&self) -> usize {
        self.left.schema.len()
    }

    /// Maps a combined-space attribute to `(side, local id)`.
    pub fn side_of(&self, attr: AttrId) -> (Side, AttrId) {
        let w = self.left_width();
        if attr.index() < w {
            (Side::Left, attr)
        } else {
            (Side::Right, AttrId((attr.index() - w) as u32))
        }
    }

    /// Lifts a `side`-local attribute into the combined space.
    pub fn combined(&self, side: Side, attr: AttrId) -> AttrId {
        match side {
            Side::Left => attr,
            Side::Right => AttrId((self.left_width() + attr.index()) as u32),
        }
    }

    /// The projection expressions (combined space).
    pub fn projections(&self) -> &[Expr] {
        &self.projections
    }

    /// The aggregates (combined space).
    pub fn aggregates(&self) -> &[Aggregate] {
        &self.aggregates
    }

    /// The group-key expressions (combined space).
    pub fn group_by(&self) -> &[Expr] {
        &self.group_by
    }

    /// Whether this is a scalar aggregation join (one output row total).
    pub fn is_aggregate(&self) -> bool {
        !self.aggregates.is_empty() && self.group_by.is_empty()
    }

    /// Whether this is a grouped aggregation join.
    pub fn is_grouped(&self) -> bool {
        !self.group_by.is_empty()
    }

    /// Values per output row.
    pub fn output_width(&self) -> usize {
        if self.is_grouped() {
            self.group_by.len() + self.aggregates.len()
        } else if self.is_aggregate() {
            self.aggregates.len()
        } else {
            self.projections.len()
        }
    }

    /// The select-items' expressions (projections, group keys, aggregate
    /// inputs), combined space.
    pub fn select_exprs(&self) -> impl Iterator<Item = &Expr> {
        self.projections
            .iter()
            .chain(self.group_by.iter())
            .chain(self.aggregates.iter().map(|a| &a.expr))
    }

    /// Combined-space attributes referenced in the select clause.
    pub fn select_attrs(&self) -> AttrSet {
        let mut s = AttrSet::new();
        for e in self.select_exprs() {
            e.collect_attrs(&mut s);
        }
        s
    }

    /// `side`-local attributes the select clause reads from that side —
    /// the join *payload* (join keys excluded unless also selected).
    pub fn payload_attrs(&self, side: Side) -> AttrSet {
        let mut out = AttrSet::new();
        for a in self.select_attrs().iter() {
            let (s, local) = self.side_of(a);
            if s == side {
                out.insert(local);
            }
        }
        out
    }

    /// Every `side`-local attribute the join touches on that side: keys,
    /// payload, and residual-filter attributes. This is what the engine
    /// must cover on `side` — and what it observes as the side's access
    /// pattern, so the adviser sees key+payload column groups as hot.
    pub fn side_attrs(&self, side: Side) -> AttrSet {
        let mut out = self.payload_attrs(side);
        for k in self.key_attrs(side) {
            out.insert(k);
        }
        out.union_with(&self.filter(side).attrs());
        out
    }

    /// Total expression-tree nodes across select items (the
    /// interpretation-overhead term of the cost model).
    pub fn select_node_count(&self) -> usize {
        self.select_exprs().map(|e| e.node_count()).sum()
    }
}

/// Builder for [`JoinQuery`]: binds relations, resolves column names,
/// collects keys and filters, and finishes into one of the three select
/// shapes.
#[derive(Debug, Clone)]
pub struct JoinBuilder {
    left: RelRef,
    right: RelRef,
    on: Vec<(AttrId, AttrId)>,
    left_filter: Conjunction,
    right_filter: Conjunction,
}

impl JoinBuilder {
    /// Resolves an **unqualified** column name to a combined-space column
    /// expression. Fails with [`QueryError::AmbiguousAttr`] when both
    /// schemas define the name and [`QueryError::UnknownColumn`] when
    /// neither does.
    pub fn col(&self, name: &str) -> Result<Expr, QueryError> {
        let l = self.left.schema.attr_by_name(name).ok();
        let r = self.right.schema.attr_by_name(name).ok();
        match (l, r) {
            (Some(_), Some(_)) => Err(QueryError::AmbiguousAttr(name.to_string())),
            (Some(a), None) => Ok(Expr::col(a)),
            (None, Some(a)) => Ok(Expr::col(self.lift_right(a))),
            (None, None) => Err(QueryError::UnknownColumn(name.to_string())),
        }
    }

    /// Resolves a column name on the **left** side (combined space ==
    /// left-local space).
    pub fn lcol(&self, name: &str) -> Result<Expr, QueryError> {
        self.left
            .schema
            .attr_by_name(name)
            .map(Expr::col)
            .map_err(|_| QueryError::UnknownColumn(format!("{}.{name}", self.left.name)))
    }

    /// Resolves a column name on the **right** side into the combined
    /// space.
    pub fn rcol(&self, name: &str) -> Result<Expr, QueryError> {
        self.right
            .schema
            .attr_by_name(name)
            .map(|a| Expr::col(self.lift_right(a)))
            .map_err(|_| QueryError::UnknownColumn(format!("{}.{name}", self.right.name)))
    }

    fn lift_right(&self, a: AttrId) -> AttrId {
        AttrId((self.left.schema.len() + a.index()) as u32)
    }

    /// Adds an equi-join key pair by column name (left name, right name).
    pub fn on(mut self, left: &str, right: &str) -> Result<Self, QueryError> {
        let l = self
            .left
            .schema
            .attr_by_name(left)
            .map_err(|_| QueryError::UnknownColumn(format!("{}.{left}", self.left.name)))?;
        let r = self
            .right
            .schema
            .attr_by_name(right)
            .map_err(|_| QueryError::UnknownColumn(format!("{}.{right}", self.right.name)))?;
        self.on.push((l, r));
        Ok(self)
    }

    /// Adds an equi-join key pair by local attribute ids.
    pub fn on_attrs(mut self, left: AttrId, right: AttrId) -> Self {
        self.on.push((left, right));
        self
    }

    /// Sets the left side's residual filter (left-local attribute ids).
    pub fn filter_left(mut self, filter: Conjunction) -> Self {
        self.left_filter = filter;
        self
    }

    /// Sets the right side's residual filter (right-local attribute ids).
    pub fn filter_right(mut self, filter: Conjunction) -> Self {
        self.right_filter = filter;
        self
    }

    /// Finishes as a projection join: one output row per matching tuple
    /// pair.
    pub fn project<I: IntoIterator<Item = Expr>>(self, exprs: I) -> Result<JoinQuery, QueryError> {
        self.select(exprs, [])
    }

    /// Finishes as a scalar aggregation join: one output row total.
    pub fn aggregate<I: IntoIterator<Item = Aggregate>>(
        self,
        aggs: I,
    ) -> Result<JoinQuery, QueryError> {
        self.select([], aggs)
    }

    /// The general ungrouped finisher: plain expressions *or* aggregates,
    /// never both — the same [`QueryError::MixedSelect`] taxonomy as
    /// [`Query::select`](crate::Query::select).
    pub fn select<P, A>(self, exprs: P, aggs: A) -> Result<JoinQuery, QueryError>
    where
        P: IntoIterator<Item = Expr>,
        A: IntoIterator<Item = Aggregate>,
    {
        let projections: Vec<Expr> = exprs.into_iter().collect();
        let aggregates: Vec<Aggregate> = aggs.into_iter().collect();
        if projections.is_empty() && aggregates.is_empty() {
            return Err(QueryError::EmptySelect);
        }
        if !projections.is_empty() && !aggregates.is_empty() {
            return Err(QueryError::MixedSelect);
        }
        self.finish(projections, aggregates, Vec::new())
    }

    /// Finishes as a grouped aggregation join: one output row per distinct
    /// key vector, sorted ascending by key (the engine-wide grouped
    /// determinism convention).
    pub fn grouped<K, A>(self, keys: K, aggs: A) -> Result<JoinQuery, QueryError>
    where
        K: IntoIterator<Item = Expr>,
        A: IntoIterator<Item = Aggregate>,
    {
        let group_by: Vec<Expr> = keys.into_iter().collect();
        if group_by.is_empty() {
            return Err(QueryError::EmptySelect);
        }
        self.finish(Vec::new(), aggs.into_iter().collect(), group_by)
    }

    fn finish(
        self,
        projections: Vec<Expr>,
        aggregates: Vec<Aggregate>,
        group_by: Vec<Expr>,
    ) -> Result<JoinQuery, QueryError> {
        if self.on.is_empty() {
            return Err(QueryError::NoJoinKeys);
        }
        Ok(JoinQuery {
            left: self.left,
            right: self.right,
            on: self.on,
            left_filter: self.left_filter,
            right_filter: self.right_filter,
            projections,
            aggregates,
            group_by,
        })
    }
}

impl fmt::Display for JoinQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            Ok(())
        };
        for e in self.group_by.iter().chain(&self.projections) {
            sep(f)?;
            write!(f, "{e}")?;
        }
        for a in &self.aggregates {
            sep(f)?;
            write!(f, "{a}")?;
        }
        write!(f, " from {} join {} on", self.left.name, self.right.name)?;
        for (i, (l, r)) in self.on.iter().enumerate() {
            if i > 0 {
                write!(f, " and")?;
            }
            write!(f, " {}.{l} = {}.{r}", self.left.name, self.right.name)?;
        }
        if !self.left_filter.is_always_true() {
            write!(f, " where[{}] {}", self.left.name, self.left_filter)?;
        }
        if !self.right_filter.is_always_true() {
            if self.left_filter.is_always_true() {
                write!(f, " where")?;
            } else {
                write!(f, " and")?;
            }
            write!(f, "[{}] {}", self.right.name, self.right_filter)?;
        }
        if self.is_grouped() {
            write!(f, " group by ")?;
            for (i, k) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Aggregate;
    use crate::predicate::Predicate;
    use crate::query::Query;
    use h2o_storage::LogicalType;

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        let photo = Schema::typed([
            ("objID", LogicalType::I64),
            ("ra", LogicalType::F64),
            ("flags", LogicalType::I64),
        ])
        .into_shared();
        let spec = Schema::typed([
            ("specObjID", LogicalType::I64),
            ("bestObjID", LogicalType::I64),
            ("z", LogicalType::F64),
            ("flags", LogicalType::I64),
        ])
        .into_shared();
        (photo, spec)
    }

    #[test]
    fn builder_resolves_names_across_sides() {
        let (photo, spec) = schemas();
        let b = Query::join(("photo", photo), ("spec", spec));
        // Unique names resolve unqualified; "flags" is on both sides.
        assert_eq!(b.col("ra").unwrap(), Expr::col(1u32));
        assert_eq!(b.col("z").unwrap(), Expr::col(5u32)); // 3 (left width) + 2
        assert_eq!(
            b.col("flags").unwrap_err(),
            QueryError::AmbiguousAttr("flags".into())
        );
        assert_eq!(b.lcol("flags").unwrap(), Expr::col(2u32));
        assert_eq!(b.rcol("flags").unwrap(), Expr::col(6u32));
        assert_eq!(
            b.col("nope").unwrap_err(),
            QueryError::UnknownColumn("nope".into())
        );
        assert_eq!(
            b.rcol("ra").unwrap_err(),
            QueryError::UnknownColumn("spec.ra".into())
        );
    }

    #[test]
    fn join_shape_and_attr_spaces() {
        let (photo, spec) = schemas();
        let b = Query::join(("photo", photo), ("spec", spec));
        let ra = b.col("ra").unwrap();
        let z = b.col("z").unwrap();
        let q = b
            .on("objID", "bestObjID")
            .unwrap()
            .filter_left(Conjunction::of([Predicate::lt(2u32, 100)]))
            .filter_right(Conjunction::of([Predicate::gt(3u32, 0)]))
            .project([ra, z])
            .unwrap();
        assert_eq!(q.on(), &[(AttrId(0), AttrId(1))]);
        assert_eq!(q.left_width(), 3);
        assert_eq!(q.side_of(AttrId(1)), (Side::Left, AttrId(1)));
        assert_eq!(q.side_of(AttrId(5)), (Side::Right, AttrId(2)));
        assert_eq!(q.combined(Side::Right, AttrId(2)), AttrId(5));
        assert_eq!(q.key_attrs(Side::Left), vec![AttrId(0)]);
        assert_eq!(q.key_attrs(Side::Right), vec![AttrId(1)]);
        assert_eq!(q.payload_attrs(Side::Left).to_vec(), vec![AttrId(1)]);
        assert_eq!(q.payload_attrs(Side::Right).to_vec(), vec![AttrId(2)]);
        // side_attrs = keys ∪ payload ∪ filter attrs, local space.
        assert_eq!(
            q.side_attrs(Side::Left).to_vec(),
            vec![AttrId(0), AttrId(1), AttrId(2)]
        );
        assert_eq!(
            q.side_attrs(Side::Right).to_vec(),
            vec![AttrId(1), AttrId(2), AttrId(3)]
        );
        assert!(!q.is_aggregate());
        assert!(!q.is_grouped());
        assert_eq!(q.output_width(), 2);
    }

    #[test]
    fn missing_join_keys_rejected() {
        let (photo, spec) = schemas();
        let b = Query::join(("photo", photo), ("spec", spec));
        let ra = b.col("ra").unwrap();
        let err = b.project([ra]).unwrap_err();
        assert_eq!(err, QueryError::NoJoinKeys);
        assert_eq!(
            err.to_string(),
            "join requires at least one equi-join key pair (JoinBuilder::on)"
        );
    }

    #[test]
    fn select_taxonomy_matches_single_relation_rules() {
        let (photo, spec) = schemas();
        let b = Query::join(("photo", photo), ("spec", spec))
            .on("objID", "bestObjID")
            .unwrap();
        let ra = b.col("ra").unwrap();
        assert_eq!(
            b.clone().select([], []).unwrap_err(),
            QueryError::EmptySelect
        );
        assert_eq!(
            b.clone()
                .select([ra.clone()], [Aggregate::count()])
                .unwrap_err(),
            QueryError::MixedSelect
        );
        assert_eq!(
            b.clone().grouped([], [Aggregate::count()]).unwrap_err(),
            QueryError::EmptySelect
        );
        let g = b.grouped([ra], [Aggregate::count()]).unwrap();
        assert!(g.is_grouped());
        assert_eq!(g.output_width(), 2);
    }

    #[test]
    fn rendered_error_messages() {
        // Rendered-message regressions for the join error variants.
        assert_eq!(
            QueryError::UnknownRelation("spec".into()).to_string(),
            "unknown relation: spec"
        );
        assert_eq!(
            QueryError::AmbiguousAttr("flags".into()).to_string(),
            "ambiguous attribute flags: both join sides define it \
             (qualify with JoinBuilder::lcol / JoinBuilder::rcol)"
        );
        assert_eq!(
            QueryError::UnknownColumn("photo.nope".into()).to_string(),
            "unknown column: photo.nope (neither join side defines it)"
        );
    }

    #[test]
    fn display_renders_the_join() {
        let (photo, spec) = schemas();
        let b = Query::join(("photo", photo), ("spec", spec));
        let z = b.col("z").unwrap();
        let q = b
            .on("objID", "bestObjID")
            .unwrap()
            .filter_left(Conjunction::of([Predicate::lt(2u32, 100)]))
            .grouped([z], [Aggregate::count()])
            .unwrap();
        assert_eq!(
            q.to_string(),
            "select a5, count(1) from photo join spec on photo.a0 = spec.a1 \
             where[photo] a2 < 100 group by a5"
        );
    }
}
