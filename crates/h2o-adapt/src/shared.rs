//! Thread-shared adaptation state.
//!
//! The concurrent engine executes queries through `&self`, so the two
//! pieces of adaptation state that every query touches — the monitoring
//! window and the adviser's advice queue — live behind interior
//! mutability here. Both are deliberately coarse single mutexes: a window
//! observation is a few comparisons against at most `WindowConfig::max`
//! patterns, and the advice queue holds a handful of [`GroupSpec`]s, so
//! neither lock is ever held for meaningful time relative to a scan.

use crate::window::{MonitoringWindow, WindowConfig};
use h2o_cost::{AccessPattern, GroupSpec};
use parking_lot::Mutex;

/// A [`MonitoringWindow`] shareable across query threads.
///
/// Every method takes `&self`; the window itself is unchanged — this is a
/// locking shell, so the single-threaded window logic (and its tests) stay
/// the authority on shift detection and sizing.
#[derive(Debug)]
pub struct SharedWindow {
    inner: Mutex<MonitoringWindow>,
}

impl SharedWindow {
    /// Creates a shared window with the given configuration.
    pub fn new(config: WindowConfig) -> Self {
        SharedWindow {
            inner: Mutex::new(MonitoringWindow::new(config)),
        }
    }

    /// Records one query's access pattern; returns `true` when this
    /// observation completes an adaptation interval.
    pub fn observe(&self, pat: AccessPattern) -> bool {
        self.inner.lock().observe(pat)
    }

    /// The patterns of the current adaptation window (what the adviser
    /// reasons over).
    pub fn snapshot(&self) -> Vec<AccessPattern> {
        self.inner.lock().snapshot()
    }

    /// Current window size (queries between adaptation evaluations).
    pub fn size(&self) -> usize {
        self.inner.lock().size()
    }

    /// Number of recorded patterns available for analysis.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no patterns are recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Total workload shifts detected so far.
    pub fn shifts_detected(&self) -> u64 {
        self.inner.lock().shifts_detected()
    }

    /// Marks an adaptation round as completed (grows the window while the
    /// workload is stable).
    pub fn adaptation_done(&self) {
        self.inner.lock().adaptation_done()
    }
}

/// The queue of layouts the adviser has recommended but the engine has not
/// yet materialized — the hand-off point between the monitoring/advice side
/// and the (possibly background) reorganizer.
///
/// Specs are identified by their attribute sets. Removal is by value, not
/// by index: a concurrent adaptation round may replace the queue between a
/// reader's `get` and its `remove`, and a by-value remove degrades to a
/// harmless no-op in that race instead of evicting the wrong spec.
#[derive(Debug, Default)]
pub struct AdviceQueue {
    inner: Mutex<Vec<GroupSpec>>,
}

impl AdviceQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        AdviceQueue::default()
    }

    /// Whether the queue holds no advice.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Number of queued specs.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// A copy of the queued specs.
    pub fn get(&self) -> Vec<GroupSpec> {
        self.inner.lock().clone()
    }

    /// Replaces the queue with a fresh recommendation.
    pub fn replace(&self, specs: Vec<GroupSpec>) {
        *self.inner.lock() = specs;
    }

    /// Pops the next spec to work on, if any.
    pub fn pop(&self) -> Option<GroupSpec> {
        let mut q = self.inner.lock();
        if q.is_empty() {
            None
        } else {
            Some(q.remove(0))
        }
    }

    /// Removes the first spec with this attribute set; returns whether one
    /// was present.
    pub fn remove(&self, spec: &GroupSpec) -> bool {
        let mut q = self.inner.lock();
        match q.iter().position(|g| g.attrs == spec.attrs) {
            Some(i) => {
                q.remove(i);
                true
            }
            None => false,
        }
    }

    /// Keeps only the specs for which `keep` returns `true`.
    pub fn retain(&self, keep: impl FnMut(&GroupSpec) -> bool) {
        self.inner.lock().retain(keep)
    }

    /// Drops all queued advice.
    pub fn clear(&self) {
        self.inner.lock().clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_storage::AttrSet;

    fn spec(ids: &[usize]) -> GroupSpec {
        GroupSpec::new(ids.iter().copied().collect::<AttrSet>())
    }

    #[test]
    fn queue_replace_pop_remove() {
        let q = AdviceQueue::new();
        assert!(q.is_empty());
        q.replace(vec![spec(&[0, 1]), spec(&[2])]);
        assert_eq!(q.len(), 2);
        assert!(q.remove(&spec(&[2])));
        assert!(!q.remove(&spec(&[2])), "second removal is a no-op");
        assert_eq!(q.pop().unwrap().attrs, spec(&[0, 1]).attrs);
        assert!(q.pop().is_none());
    }

    #[test]
    fn queue_retain() {
        let q = AdviceQueue::new();
        q.replace(vec![spec(&[0]), spec(&[1]), spec(&[0, 1])]);
        q.retain(|g| g.attrs.len() == 1);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn shared_window_is_observable_through_shared_refs() {
        let w = SharedWindow::new(WindowConfig {
            initial: 3,
            min: 2,
            max: 10,
            ..WindowConfig::default()
        });
        let pat = AccessPattern {
            select: [0usize, 1].into_iter().collect(),
            where_: AttrSet::new(),
            selectivity: 1.0,
            output_width: 2,
            select_ops: 2,
            is_aggregate: true,
            is_grouped: false,
        };
        assert!(!w.observe(pat.clone()));
        assert!(!w.observe(pat.clone()));
        assert!(w.observe(pat), "third observation completes the interval");
        w.adaptation_done();
        assert_eq!(w.snapshot().len(), 3);
        assert!(!w.is_empty());
        assert_eq!(w.len(), 3);
        assert_eq!(w.shifts_detected(), 0);
        assert!(w.size() >= 3);
    }

    #[test]
    fn shared_window_from_threads() {
        let w = SharedWindow::new(WindowConfig::default());
        std::thread::scope(|s| {
            for t in 0..4 {
                let w = &w;
                s.spawn(move || {
                    for i in 0..50 {
                        let pat = AccessPattern {
                            select: [(t + i) % 7].into_iter().collect(),
                            where_: AttrSet::new(),
                            selectivity: 0.5,
                            output_width: 1,
                            select_ops: 1,
                            is_aggregate: false,
                            is_grouped: false,
                        };
                        w.observe(pat);
                    }
                });
            }
        });
        assert_eq!(w.len().min(200), w.len(), "history stays bounded");
    }
}
