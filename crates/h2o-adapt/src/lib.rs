//! # h2o-adapt — H2O's adaptation mechanism
//!
//! The continuous-adaptation half of the system (SIGMOD 2014 §3.2):
//!
//! * [`MonitoringWindow`] — the dynamic window of the last N query access
//!   patterns. The window *shrinks* when workload-shift detection fires
//!   (new access patterns unlike recent history) to force an earlier
//!   adaptation phase, and *grows back* while the workload is stable
//!   (Fig. 9's static-vs-dynamic window experiment).
//! * [`AffinityMatrix`] — attribute-affinity statistics in the style of
//!   Navathe et al., kept **separately for the select and the where
//!   clause** ("differentiating between attributes in the select and the
//!   where clause allows H2O to consider appropriate data layouts according
//!   to the query access patterns").
//! * [`Adviser`] — candidate layout generation and selection: seeds the
//!   search with the narrowest per-query groups, iteratively merges groups
//!   while the Eq. 1 objective improves, and keeps only candidates whose
//!   benefit over the window amortizes their transformation cost.
//!
//! The adviser only *recommends* layouts; materialization is lazy and
//! happens inside the engine (`h2o-core`) when a query actually benefits.

//! For the concurrent engine, [`SharedWindow`] and [`AdviceQueue`] wrap the
//! window and the recommendation list in interior mutability so monitoring
//! and advice hand-off work through shared references from many query
//! threads at once.

pub mod adviser;
pub mod affinity;
pub mod shared;
pub mod window;

pub use adviser::{Adviser, AdviserConfig, Recommendation};
pub use affinity::AffinityMatrix;
pub use shared::{AdviceQueue, SharedWindow};
pub use window::{MonitoringWindow, WindowConfig};
