//! The dynamic monitoring window.
//!
//! "H2O uses a dynamic window of N queries to monitor the access patterns
//! of the incoming queries. ... The monitoring window is not static but it
//! adapts when significant changes in the statistics happen. ... H2O
//! detects workload shifts by comparing new queries with queries observed
//! in the previous query window. It examines whether the input query access
//! pattern is new or if it has been observed with low frequency. New access
//! patterns are an indication that there might be a shift in the workload.
//! In this case, the adaptation window decreases to progressively
//! orchestrate a new adaptation phase while when the workload is stable,
//! H2O increases the adaptation window." (§3.2)

use h2o_cost::AccessPattern;
use std::collections::VecDeque;

/// Tuning knobs for the dynamic window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Initial (and reset) window size in queries.
    pub initial: usize,
    /// Lower bound the window may shrink to.
    pub min: usize,
    /// Upper bound the window may grow to.
    pub max: usize,
    /// Multiplicative shrink on a detected shift (e.g. `0.5` halves the
    /// remaining distance to the next adaptation).
    pub shrink_factor: f64,
    /// Additive growth per stable adaptation round.
    pub grow_step: usize,
    /// A query whose best Jaccard similarity against the recorded patterns
    /// is below this threshold counts as *new* (shift evidence).
    pub novelty_threshold: f64,
    /// Number of consecutive novel queries required to fire shift
    /// detection (debounces oscillating workloads).
    pub shift_votes: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            initial: 20,
            min: 4,
            max: 200,
            shrink_factor: 0.5,
            grow_step: 5,
            novelty_threshold: 0.3,
            shift_votes: 3,
        }
    }
}

impl WindowConfig {
    /// A fixed-size window (disables all dynamics) — the "static window"
    /// baseline of Fig. 9.
    pub fn fixed(size: usize) -> Self {
        WindowConfig {
            initial: size,
            min: size,
            max: size,
            shrink_factor: 1.0,
            grow_step: 0,
            novelty_threshold: 0.0,
            shift_votes: usize::MAX,
        }
    }
}

/// The sliding window of recent query access patterns.
#[derive(Debug, Clone)]
pub struct MonitoringWindow {
    config: WindowConfig,
    patterns: VecDeque<AccessPattern>,
    /// Current adaptive window size (queries between adaptation rounds).
    size: usize,
    /// Queries observed since the last adaptation round.
    since_adapt: usize,
    /// Consecutive novel queries seen.
    novel_streak: usize,
    /// Total shifts detected (statistics).
    shifts_detected: u64,
}

impl MonitoringWindow {
    /// Creates a window with the given configuration.
    pub fn new(config: WindowConfig) -> Self {
        assert!(config.min >= 1 && config.min <= config.initial && config.initial <= config.max);
        MonitoringWindow {
            size: config.initial,
            config,
            patterns: VecDeque::new(),
            since_adapt: 0,
            novel_streak: 0,
            shifts_detected: 0,
        }
    }

    /// Current window size (queries between adaptation evaluations).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of recorded patterns available for analysis.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether no patterns are recorded yet.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The recorded patterns, oldest first.
    pub fn patterns(&self) -> impl Iterator<Item = &AccessPattern> {
        self.patterns.iter()
    }

    /// The patterns of the *current adaptation window* (the most recent
    /// `size()` observations) — what the adviser reasons over. The full
    /// retained history (up to `max`) is longer; it serves novelty
    /// detection, which must survive window shrinks.
    pub fn snapshot(&self) -> Vec<AccessPattern> {
        let start = self.patterns.len().saturating_sub(self.size);
        self.patterns.iter().skip(start).cloned().collect()
    }

    /// Queries observed since the last adaptation round.
    pub fn since_adapt(&self) -> usize {
        self.since_adapt
    }

    /// Total workload shifts detected so far.
    pub fn shifts_detected(&self) -> u64 {
        self.shifts_detected
    }

    /// Whether `pat` is *novel* relative to the recorded history: the paper
    /// asks "whether the input query access pattern is new or if it has
    /// been observed with low frequency". A pattern is novel while fewer
    /// than two similar patterns exist in the window — a lone earlier
    /// occurrence of the same new pattern does not make it familiar, but a
    /// recurring workload class (seen twice or more) is never novel. The
    /// bound is intentionally *not* relative to the window length: after a
    /// shift shrinks the window, a short history must not make returning
    /// classes look novel (that feedback loop would pin the window at its
    /// minimum).
    pub fn is_novel(&self, pat: &AccessPattern) -> bool {
        if self.patterns.is_empty() {
            return false;
        }
        let similar = self
            .patterns
            .iter()
            .filter(|p| p.similarity(pat) >= self.config.novelty_threshold)
            .count();
        // The bound must be at least `shift_votes`: the first few queries
        // of a genuinely new phase land in history and must not make each
        // other look familiar before the votes accumulate. A recurring
        // class (≥ shift_votes occurrences across the retained history)
        // is never novel.
        similar < self.config.shift_votes.min(self.patterns.len())
    }

    /// Records one query's access pattern. Returns `true` if this
    /// observation completed an adaptation interval — i.e. the engine
    /// should run an adaptation round now.
    pub fn observe(&mut self, pat: AccessPattern) -> bool {
        // Shift detection before inserting (compare against history only).
        if self.is_novel(&pat) {
            self.novel_streak += 1;
            if self.novel_streak >= self.config.shift_votes {
                self.on_shift();
                self.novel_streak = 0;
            }
        } else {
            self.novel_streak = 0;
        }

        self.patterns.push_back(pat);
        while self.patterns.len() > self.config.max {
            self.patterns.pop_front();
        }
        self.since_adapt += 1;
        self.since_adapt >= self.size
    }

    /// Marks an adaptation round as completed; while the workload is stable
    /// the window grows by `grow_step` (capped at `max`).
    pub fn adaptation_done(&mut self) {
        self.since_adapt = 0;
        self.size = (self.size + self.config.grow_step).min(self.config.max);
    }

    /// Shift reaction: shrink the window so the next adaptation happens
    /// sooner. The retained pattern history is deliberately *not* trimmed:
    /// novelty detection needs it to recognize returning classes, otherwise
    /// a shrunken window makes familiar queries look novel and the window
    /// pins itself at the minimum. The adviser already sees only the last
    /// `size` patterns via [`Self::snapshot`].
    fn on_shift(&mut self) {
        self.shifts_detected += 1;
        let new_size = ((self.size as f64) * self.config.shrink_factor).floor() as usize;
        self.size = new_size.max(self.config.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_storage::AttrSet;

    fn pat(attrs: &[usize]) -> AccessPattern {
        AccessPattern {
            select: attrs.iter().copied().collect(),
            where_: AttrSet::new(),
            selectivity: 1.0,
            output_width: attrs.len(),
            select_ops: attrs.len(),
            is_aggregate: true,
            is_grouped: false,
        }
    }

    #[test]
    fn observe_triggers_adaptation_at_window_size() {
        let mut w = MonitoringWindow::new(WindowConfig {
            initial: 3,
            min: 2,
            max: 10,
            ..WindowConfig::default()
        });
        assert!(!w.observe(pat(&[0])));
        assert!(!w.observe(pat(&[0])));
        assert!(w.observe(pat(&[0])), "third query completes the interval");
        w.adaptation_done();
        assert_eq!(w.since_adapt(), 0);
    }

    #[test]
    fn window_grows_while_stable() {
        let cfg = WindowConfig {
            initial: 4,
            min: 2,
            max: 10,
            grow_step: 3,
            ..WindowConfig::default()
        };
        let mut w = MonitoringWindow::new(cfg);
        assert_eq!(w.size(), 4);
        w.adaptation_done();
        assert_eq!(w.size(), 7);
        w.adaptation_done();
        assert_eq!(w.size(), 10);
        w.adaptation_done();
        assert_eq!(w.size(), 10, "capped at max");
    }

    #[test]
    fn shift_shrinks_window() {
        let cfg = WindowConfig {
            initial: 16,
            min: 4,
            max: 32,
            shrink_factor: 0.5,
            novelty_threshold: 0.3,
            shift_votes: 2,
            ..WindowConfig::default()
        };
        let mut w = MonitoringWindow::new(cfg);
        for _ in 0..8 {
            w.observe(pat(&[0, 1, 2]));
        }
        assert_eq!(w.size(), 16);
        // Disjoint access pattern: novel. Two votes fire the shift.
        w.observe(pat(&[50, 51]));
        assert_eq!(w.size(), 16, "one novel query is not yet a shift");
        w.observe(pat(&[50, 51]));
        assert_eq!(w.size(), 8, "shift halves the window");
        assert_eq!(w.shifts_detected(), 1);
    }

    #[test]
    fn similar_queries_reset_novel_streak() {
        let cfg = WindowConfig {
            shift_votes: 2,
            ..WindowConfig::default()
        };
        let mut w = MonitoringWindow::new(cfg);
        for _ in 0..5 {
            w.observe(pat(&[0, 1, 2]));
        }
        w.observe(pat(&[50, 51])); // novel
        w.observe(pat(&[0, 1, 2])); // familiar: resets streak
        w.observe(pat(&[50, 51])); // novel again, streak = 1
        assert_eq!(
            w.shifts_detected(),
            0,
            "oscillation must not trigger a shift"
        );
    }

    #[test]
    fn fixed_window_never_shifts() {
        let mut w = MonitoringWindow::new(WindowConfig::fixed(30));
        for _ in 0..10 {
            w.observe(pat(&[0]));
        }
        for _ in 0..15 {
            w.observe(pat(&[90, 91]));
        }
        assert_eq!(w.size(), 30);
        assert_eq!(w.shifts_detected(), 0);
        w.adaptation_done();
        assert_eq!(w.size(), 30);
    }

    #[test]
    fn history_bounded_by_max() {
        let cfg = WindowConfig {
            initial: 4,
            min: 2,
            max: 6,
            ..WindowConfig::default()
        };
        let mut w = MonitoringWindow::new(cfg);
        for i in 0..20 {
            w.observe(pat(&[i % 3]));
        }
        assert!(w.len() <= 6);
    }

    #[test]
    fn shrink_drops_old_history() {
        let cfg = WindowConfig {
            initial: 16,
            min: 4,
            max: 32,
            shrink_factor: 0.25,
            novelty_threshold: 0.3,
            shift_votes: 1,
            ..WindowConfig::default()
        };
        let mut w = MonitoringWindow::new(cfg);
        for _ in 0..12 {
            w.observe(pat(&[0, 1]));
        }
        w.observe(pat(&[40, 41])); // immediate shift (1 vote)
        assert_eq!(w.size(), 4);
        // History is retained (novelty detection needs it), but the
        // adviser's view shrinks with the window.
        assert!(w.len() > 4, "full history retained");
        assert!(w.snapshot().len() <= 4, "adviser sees only the new window");
    }

    #[test]
    fn empty_window_nothing_is_novel() {
        let w = MonitoringWindow::new(WindowConfig::default());
        assert!(!w.is_novel(&pat(&[7])));
        assert!(w.is_empty());
    }
}
