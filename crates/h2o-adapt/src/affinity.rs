//! Attribute affinity matrices.
//!
//! "The access patterns are stored in the form of two affinity attribute
//! matrices (one for the where and one for the select clause). Affinity
//! among attributes expresses the extent to which they are accessed
//! together during processing. The basic premise is that attributes
//! accessed together and have similar frequencies should be grouped
//! together." (§3.2, citing Navathe et al.'s vertical partitioning work)
//!
//! The matrix is symmetric with the per-attribute access frequency on the
//! diagonal; it is stored as a dense lower triangle.

use h2o_storage::{AttrId, AttrSet};

/// A symmetric co-access count matrix over the schema's attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffinityMatrix {
    n: usize,
    /// Lower triangle, row-major: entry (i, j) with i >= j at
    /// `i*(i+1)/2 + j`.
    tri: Vec<u64>,
    /// Number of patterns folded in.
    observations: u64,
}

impl AffinityMatrix {
    /// An empty matrix over `n` attributes.
    pub fn new(n: usize) -> Self {
        AffinityMatrix {
            n,
            tri: vec![0; n * (n + 1) / 2],
            observations: 0,
        }
    }

    #[inline]
    fn idx(&self, a: usize, b: usize) -> usize {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        hi * (hi + 1) / 2 + lo
    }

    /// Number of attributes the matrix covers.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Number of recorded access patterns.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Folds in one query's attribute set: increments the pairwise affinity
    /// of every pair in `attrs` and the diagonal frequency of each member.
    pub fn record(&mut self, attrs: &AttrSet) {
        let members: Vec<AttrId> = attrs.iter().collect();
        for (i, &a) in members.iter().enumerate() {
            debug_assert!(a.index() < self.n, "attribute outside matrix");
            for &b in &members[i..] {
                let idx = self.idx(a.index(), b.index());
                self.tri[idx] += 1;
            }
        }
        self.observations += 1;
    }

    /// Co-access count of `a` and `b` (diagonal = frequency of `a`).
    pub fn affinity(&self, a: AttrId, b: AttrId) -> u64 {
        self.tri[self.idx(a.index(), b.index())]
    }

    /// Access frequency of `a`.
    pub fn frequency(&self, a: AttrId) -> u64 {
        self.affinity(a, a)
    }

    /// Normalized affinity in `[0, 1]`: co-access relative to the more
    /// frequent of the two attributes. 1.0 means "whenever the more
    /// frequent one is accessed, the other is too" — the strongest possible
    /// grouping signal.
    pub fn normalized(&self, a: AttrId, b: AttrId) -> f64 {
        let denom = self.frequency(a).max(self.frequency(b));
        if denom == 0 {
            0.0
        } else {
            self.affinity(a, b) as f64 / denom as f64
        }
    }

    /// Average normalized affinity between two attribute sets — the merge
    /// signal the candidate generator uses to rank group unions.
    pub fn group_affinity(&self, g1: &AttrSet, g2: &AttrSet) -> f64 {
        let mut sum = 0.0;
        let mut count = 0u64;
        for a in g1.iter() {
            for b in g2.iter() {
                sum += self.normalized(a, b);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Resets all counts (used when the monitoring window is invalidated by
    /// a workload shift).
    pub fn clear(&mut self) {
        self.tri.fill(0);
        self.observations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aset(ids: &[usize]) -> AttrSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn record_and_query() {
        let mut m = AffinityMatrix::new(5);
        m.record(&aset(&[0, 1, 2]));
        m.record(&aset(&[1, 2]));
        m.record(&aset(&[4]));
        assert_eq!(m.frequency(AttrId(0)), 1);
        assert_eq!(m.frequency(AttrId(1)), 2);
        assert_eq!(m.frequency(AttrId(2)), 2);
        assert_eq!(m.frequency(AttrId(3)), 0);
        assert_eq!(m.frequency(AttrId(4)), 1);
        assert_eq!(m.affinity(AttrId(1), AttrId(2)), 2);
        assert_eq!(m.affinity(AttrId(0), AttrId(2)), 1);
        assert_eq!(m.affinity(AttrId(0), AttrId(4)), 0);
        assert_eq!(m.observations(), 3);
    }

    #[test]
    fn symmetry() {
        let mut m = AffinityMatrix::new(4);
        m.record(&aset(&[0, 3]));
        assert_eq!(
            m.affinity(AttrId(0), AttrId(3)),
            m.affinity(AttrId(3), AttrId(0))
        );
    }

    #[test]
    fn normalized_affinity() {
        let mut m = AffinityMatrix::new(3);
        // 0 and 1 always together; 2 sometimes alone.
        m.record(&aset(&[0, 1]));
        m.record(&aset(&[0, 1, 2]));
        m.record(&aset(&[2]));
        assert_eq!(m.normalized(AttrId(0), AttrId(1)), 1.0);
        assert!((m.normalized(AttrId(0), AttrId(2)) - 0.5).abs() < 1e-12);
        assert_eq!(m.normalized(AttrId(0), AttrId(0)), 1.0);
    }

    #[test]
    fn normalized_zero_for_unseen() {
        let m = AffinityMatrix::new(3);
        assert_eq!(m.normalized(AttrId(0), AttrId(1)), 0.0);
    }

    #[test]
    fn group_affinity_averages() {
        let mut m = AffinityMatrix::new(4);
        m.record(&aset(&[0, 1]));
        m.record(&aset(&[0, 1]));
        m.record(&aset(&[2, 3]));
        let strong = m.group_affinity(&aset(&[0]), &aset(&[1]));
        let weak = m.group_affinity(&aset(&[0, 1]), &aset(&[2, 3]));
        assert_eq!(strong, 1.0);
        assert_eq!(weak, 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut m = AffinityMatrix::new(2);
        m.record(&aset(&[0, 1]));
        m.clear();
        assert_eq!(m.observations(), 0);
        assert_eq!(m.frequency(AttrId(0)), 0);
    }

    #[test]
    fn empty_group_affinity_is_zero() {
        let m = AffinityMatrix::new(2);
        assert_eq!(m.group_affinity(&AttrSet::new(), &aset(&[0])), 0.0);
    }
}
