//! The unified request API: one engine entry point, composable options.
//!
//! [`H2oEngine::run`](crate::H2oEngine::run) replaces the historical
//! `execute_*` method family with a single entry taking a [`Request`] —
//! a query shape ([`Request::query`] or [`Request::join`]) plus an
//! [`ExecOptions`] bundle. Options **compose**: a deadline and a
//! selectivity hint on the same query, a caller-owned cancel token plus
//! a morsel budget, a forced join build side under a deadline — spellings
//! the old nine-method surface could not express.
//!
//! Every successful run returns an [`Outcome`]: the result rows plus the
//! [`ExecSnapshot`] they were computed against, so callers (differential
//! tests, the `h2o-server` oracle check) can re-derive the answer from
//! the exact same data without a separate `_snapshot` method family.

use crate::engine::{DbSnapshot, PRIMARY_RELATION};
use h2o_exec::CancelToken;
use h2o_expr::{JoinQuery, Query, QueryError, QueryResult, Side};
use h2o_storage::CatalogSnapshot;
use std::time::Duration;

/// Composable per-request execution options. Construct with
/// [`ExecOptions::new`] (or `Default`) and chain the builder methods;
/// pass to [`Request::with_options`] or use the forwarding builders on
/// [`Request`] directly.
///
/// Unset options inherit the engine's configuration: in particular, a
/// request with **no** stop-control option (deadline, cancel token,
/// morsel budget) runs under the engine's implicit
/// [`query_deadline`](crate::EngineConfig::query_deadline), while setting
/// any of them opts out of the implicit deadline (the explicit contract
/// wins).
///
/// The `h2o-server` wire protocol mirrors this struct field-for-field
/// (its `opts` request object converts 1:1 via one conversion), so a
/// network client composes exactly the options an in-process caller can.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    pub(crate) selectivity_hint: Option<f64>,
    pub(crate) deadline: Option<Duration>,
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) build_side: Option<Side>,
    pub(crate) morsel_budget: Option<u64>,
}

impl ExecOptions {
    /// No options: plan from observed history, no deadline (beyond the
    /// engine's implicit one), greedy build side, unbounded budget.
    pub fn new() -> ExecOptions {
        ExecOptions::default()
    }

    /// Plans with an explicit selectivity estimate instead of the
    /// engine's observed history (harnesses that control the workload
    /// know the true selectivity). Applies to single-relation queries;
    /// join sides keep their per-side observed history.
    pub fn hint(mut self, selectivity: f64) -> ExecOptions {
        self.selectivity_hint = Some(selectivity);
        self
    }

    /// Fails the request with [`EngineError::Timeout`] unless it
    /// completes within `timeout`, publishing nothing.
    ///
    /// [`EngineError::Timeout`]: crate::EngineError::Timeout
    pub fn deadline(mut self, timeout: Duration) -> ExecOptions {
        self.deadline = Some(timeout);
        self
    }

    /// Runs under a caller-owned [`CancelToken`]: any thread holding a
    /// clone can stop the request cooperatively
    /// ([`EngineError::Cancelled`]). Composes with [`Self::deadline`] /
    /// [`Self::budget`], which arm the same token.
    ///
    /// [`EngineError::Cancelled`]: crate::EngineError::Cancelled
    pub fn cancel(mut self, token: &CancelToken) -> ExecOptions {
        self.cancel = Some(token.clone());
        self
    }

    /// Forces the hash-join build side instead of the greedy
    /// selectivity-driven choice (the harness hook for comparing join
    /// orders). Applies to join requests; single-relation queries ignore
    /// it.
    pub fn build_side(mut self, side: Side) -> ExecOptions {
        self.build_side = Some(side);
        self
    }

    /// Caps the request's scan work at `units` morsel units (segment
    /// runs of at most
    /// [`CANCEL_CHECK_ROWS`](h2o_exec::CANCEL_CHECK_ROWS) rows each,
    /// across both join sides). A request over budget fails with
    /// [`EngineError::BudgetExhausted`], publishing nothing — the
    /// admission lever `h2o-server` uses so one heavy rollup cannot
    /// starve point queries.
    ///
    /// [`EngineError::BudgetExhausted`]: crate::EngineError::BudgetExhausted
    pub fn budget(mut self, units: u64) -> ExecOptions {
        self.morsel_budget = Some(units);
        self
    }

    /// Whether any stop-control option (deadline, cancel token, morsel
    /// budget) is set — i.e. whether this request opts out of the
    /// engine's implicit deadline.
    pub(crate) fn has_stop_control(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some() || self.morsel_budget.is_some()
    }
}

/// The query shape a [`Request`] carries.
pub(crate) enum RequestKind<'a> {
    Query(&'a Query),
    Join(&'a JoinQuery),
}

/// One unit of work for [`H2oEngine::run`](crate::H2oEngine::run): a
/// borrowed query shape plus its [`ExecOptions`].
///
/// ```
/// use h2o_core::Request;
/// use h2o_expr::{Conjunction, Expr, Predicate, Query};
/// use std::time::Duration;
///
/// let q = Query::project(
///     [Expr::col(1u32)],
///     Conjunction::of([Predicate::lt(0u32, 100)]),
/// )
/// .unwrap();
/// // Options compose: a deadline *and* a planning hint.
/// let req = Request::query(&q).deadline(Duration::from_secs(1)).hint(0.1);
/// # let _ = req;
/// ```
pub struct Request<'a> {
    pub(crate) kind: RequestKind<'a>,
    pub(crate) opts: ExecOptions,
}

impl<'a> Request<'a> {
    /// A single-relation request over the engine's primary relation.
    pub fn query(q: &'a Query) -> Request<'a> {
        Request {
            kind: RequestKind::Query(q),
            opts: ExecOptions::default(),
        }
    }

    /// A two-relation hash-join request (sides named per the query's
    /// relation bindings).
    pub fn join(q: &'a JoinQuery) -> Request<'a> {
        Request {
            kind: RequestKind::Join(q),
            opts: ExecOptions::default(),
        }
    }

    /// Replaces this request's options wholesale — the 1:1 entry the
    /// server's wire decoding uses.
    pub fn with_options(mut self, opts: ExecOptions) -> Request<'a> {
        self.opts = opts;
        self
    }

    /// See [`ExecOptions::hint`].
    pub fn hint(mut self, selectivity: f64) -> Request<'a> {
        self.opts = self.opts.hint(selectivity);
        self
    }

    /// See [`ExecOptions::deadline`].
    pub fn deadline(mut self, timeout: Duration) -> Request<'a> {
        self.opts = self.opts.deadline(timeout);
        self
    }

    /// See [`ExecOptions::cancel`].
    pub fn cancel(mut self, token: &CancelToken) -> Request<'a> {
        self.opts = self.opts.cancel(token);
        self
    }

    /// See [`ExecOptions::build_side`].
    pub fn build_side(mut self, side: Side) -> Request<'a> {
        self.opts = self.opts.build_side(side);
        self
    }

    /// See [`ExecOptions::budget`].
    pub fn budget(mut self, units: u64) -> Request<'a> {
        self.opts = self.opts.budget(units);
        self
    }
}

/// The data a successful request was answered from: the primary
/// relation's catalog version for single-relation queries, or the
/// consistent multi-relation [`DbSnapshot`] for joins. Snapshots are
/// `Arc`-backed — returning one is two reference-count bumps, never a
/// data copy.
#[derive(Debug, Clone)]
pub enum ExecSnapshot {
    /// A single-relation query's catalog version.
    Relation(CatalogSnapshot),
    /// A join's consistent view of every relation it touched.
    Db(DbSnapshot),
}

impl ExecSnapshot {
    /// The primary relation's catalog version, whichever shape ran.
    pub fn primary(&self) -> &CatalogSnapshot {
        match self {
            ExecSnapshot::Relation(s) => s,
            ExecSnapshot::Db(d) => d.primary(),
        }
    }

    /// Resolves a relation name against this snapshot. Single-relation
    /// outcomes resolve only [`PRIMARY_RELATION`].
    pub fn relation(&self, name: &str) -> Result<&CatalogSnapshot, QueryError> {
        match self {
            ExecSnapshot::Relation(s) => {
                if name == PRIMARY_RELATION {
                    Ok(s)
                } else {
                    Err(QueryError::UnknownRelation(name.to_string()))
                }
            }
            ExecSnapshot::Db(d) => d.relation(name),
        }
    }

    /// The multi-relation snapshot, when the request was a join.
    pub fn db(&self) -> Option<&DbSnapshot> {
        match self {
            ExecSnapshot::Db(d) => Some(d),
            ExecSnapshot::Relation(_) => None,
        }
    }
}

/// What [`H2oEngine::run`](crate::H2oEngine::run) returns: the result
/// rows plus the snapshot they were computed against.
#[derive(Debug)]
pub struct Outcome {
    /// The query's result rows.
    pub result: QueryResult,
    /// The exact data version the result was computed from — the hook
    /// differential tests and the server's oracle check use to re-derive
    /// the answer on the same data.
    pub snapshot: ExecSnapshot,
}

impl Outcome {
    /// Consumes the outcome, keeping only the rows — for callers that
    /// never consult the snapshot.
    pub fn into_result(self) -> QueryResult {
        self.result
    }
}
