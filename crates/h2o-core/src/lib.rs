//! # h2o-core — the H2O adaptive engine
//!
//! The top of the stack: the engine of Fig. 3 in the paper, wiring together
//!
//! * the **Data Layout Manager** (`h2o-storage`'s catalog),
//! * the **Query Processor** ([`engine::H2oEngine::run`]): per query it
//!   enumerates `(covering layout set, execution strategy)` alternatives,
//!   prices them with the Eq. 2 cost model, and runs the winner through the
//!   **Operator Generator** (`h2o-exec`'s compile + operator cache),
//! * the **Adaptation Mechanism**: the dynamic monitoring window triggers
//!   the adviser periodically; recommended layouts become *pending* and are
//!   materialized **lazily** — the first query that can benefit from a
//!   pending layout executes through the fused reorganize-and-answer
//!   operator, paying the creation cost once while answering its own query
//!   (§3.2 "Data Reorganization").
//!
//! The crate also provides the two static baseline engines used throughout
//! the paper's evaluation ([`baseline::StaticEngine`]) — a row-store and a
//! column-store sharing this very code base, exactly as the paper's own
//! comparison does ("we use our own engines which share the same design
//! principles and much of the code base with H2O") — and the *optimal*
//! oracle ([`oracle`]) that answers each query from a perfectly tailored
//! layout (Fig. 7's fourth curve).

pub mod baseline;
pub mod config;
pub mod engine;
pub mod oracle;
pub mod request;
pub mod stats;

pub use baseline::{StaticEngine, StaticKind};
pub use config::EngineConfig;
pub use engine::{
    DbSnapshot, EngineError, H2oEngine, JoinReport, MaintenanceReport, QueryReport,
    ReorganizerHandle, ReorganizerStatus, PRIMARY_RELATION, REORG_BACKOFF_BASE, REORG_BACKOFF_CAP,
};
pub use h2o_exec::{CancelReason, CancelToken};
pub use request::{ExecOptions, ExecSnapshot, Outcome, Request};
pub use stats::EngineStats;
