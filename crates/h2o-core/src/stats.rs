//! Engine statistics.

use std::time::Duration;

/// Counters the engine maintains across its lifetime. These power the
//  benchmark harness' reporting (e.g. Fig. 8 splits layout-creation time
/// from query-execution time) and the engine's own introspection API.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries executed.
    pub queries: u64,
    /// Adaptation rounds run (adviser invocations).
    pub adaptations: u64,
    /// Adaptation rounds that produced at least one candidate.
    pub recommendations: u64,
    /// Layouts materialized lazily (online, fused with a query).
    pub layouts_created: u64,
    /// Layouts evicted under the storage budget.
    pub layouts_evicted: u64,
    /// Tuples appended through the write path.
    pub rows_appended: u64,
    /// Payload bytes cloned by copy-on-write appends: when a published
    /// snapshot still shares a group's tail segment, the first append of a
    /// batch clones that one segment. Bounded by (groups × one segment)
    /// per batch — *not* by relation size — which is the invariant the
    /// segmented-storage tests pin down.
    pub bytes_cloned_on_write: u64,
    /// Payload segments sealed (filled to capacity, immutable from then
    /// on) by the append path.
    pub segments_sealed: u64,
    /// Sealed-segment runs skipped by zone-map pruning: scans consult the
    /// per-attribute min/max statistics recorded when a segment seals and
    /// skip whole segments no predicate of the conjunction can match in.
    pub segments_skipped: u64,
    /// Qualifying join-probe rows whose hash lookup was skipped because
    /// the build-side join filter (blocked bloom + exact key range)
    /// proved the key absent.
    pub probe_bloom_rejects: u64,
    /// Workload shifts detected by the monitoring window.
    pub shifts_detected: u64,
    /// Reorganizations completed, by any path: fused-with-a-query, explicit
    /// `materialize_now`, or background `maintain()` builds.
    pub reorgs_completed: u64,
    /// Catalog snapshots atomically published (appends, layout creations,
    /// drops — each is one copy-on-write swap readers pick up).
    pub snapshots_published: u64,
    /// Wall-clock time spent inside fused reorganization operators
    /// (includes answering the triggering queries).
    pub reorg_time: Duration,
    /// Wall-clock time spent running the adviser.
    pub advise_time: Duration,
    /// Queries whose execution panicked. The panic is isolated — caught at
    /// the engine boundary and surfaced as
    /// [`EngineError::ExecutionPanicked`](crate::EngineError) — so the
    /// engine stays fully usable afterwards.
    pub queries_panicked: u64,
    /// Queries stopped early because their
    /// [`CancelToken`](h2o_exec::CancelToken) was cancelled.
    pub queries_cancelled: u64,
    /// Queries stopped early because their deadline expired
    /// ([`EngineError::Timeout`](crate::EngineError)).
    pub queries_timed_out: u64,
    /// Queries stopped early because their morsel budget ran out
    /// ([`EngineError::BudgetExhausted`](crate::EngineError)).
    pub queries_budget_exhausted: u64,
    /// Maintenance rounds that panicked inside the supervised reorganizer
    /// thread (each is caught; the thread never dies).
    pub reorg_panics: u64,
    /// Times the supervised reorganizer resumed pumping after a panic
    /// (post-backoff restarts).
    pub reorg_restarts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = EngineStats::default();
        assert_eq!(s.queries, 0);
        assert_eq!(s.layouts_created, 0);
        assert_eq!(s.bytes_cloned_on_write, 0);
        assert_eq!(s.segments_sealed, 0);
        assert_eq!(s.segments_skipped, 0);
        assert_eq!(s.probe_bloom_rejects, 0);
        assert_eq!(s.reorgs_completed, 0);
        assert_eq!(s.snapshots_published, 0);
        assert_eq!(s.reorg_time, Duration::ZERO);
        assert_eq!(s.queries_panicked, 0);
        assert_eq!(s.queries_cancelled, 0);
        assert_eq!(s.queries_timed_out, 0);
        assert_eq!(s.reorg_panics, 0);
        assert_eq!(s.reorg_restarts, 0);
    }
}
