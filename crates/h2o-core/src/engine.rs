//! The H2O engine: query processor + adaptation mechanism (paper Fig. 3).

use crate::config::EngineConfig;
use crate::stats::EngineStats;
use h2o_adapt::{Adviser, MonitoringWindow};
use h2o_cost::{AccessPattern, CostModel, GroupSpec, PlanSpec, Residence};
use h2o_exec::{
    execute_with_policy as exec_execute_with_policy, reorg, AccessPlan, ExecError, OperatorCache,
    Strategy,
};
use h2o_expr::{Query, QueryResult};
use h2o_storage::{AttrId, Epoch, LayoutId, Relation, StorageError};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    Exec(ExecError),
    Storage(StorageError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Exec(e) => write!(f, "execution error: {e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// What the engine did for the most recent query — the introspection hook
/// the benchmark harness uses to annotate per-query timelines (Fig. 7's
/// "queries 23 and 29 pay the creation overhead").
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Strategy of the executed plan (`FusedVolcano` for fused
    /// reorganization queries).
    pub strategy: Strategy,
    /// Layouts the plan read.
    pub layouts: Vec<LayoutId>,
    /// The layout materialized during this query, if any.
    pub created_layout: Option<LayoutId>,
    /// The cost model's estimate for the chosen plan.
    pub estimated_cost: f64,
    /// Selectivity estimate used for planning.
    pub selectivity_estimate: f64,
}

/// The adaptive engine.
pub struct H2oEngine {
    relation: Relation,
    config: EngineConfig,
    window: MonitoringWindow,
    adviser: Adviser,
    model: CostModel,
    opcache: OperatorCache,
    /// Layouts recommended by the last adaptation round, awaiting a query
    /// that can benefit (lazy materialization, §3.2).
    pending: Vec<GroupSpec>,
    epoch: Epoch,
    stats: EngineStats,
    /// Observed selectivity per filter signature (exponentially smoothed).
    sel_history: HashMap<u64, f64>,
    last_report: Option<QueryReport>,
}

impl H2oEngine {
    /// Wraps a relation (with whatever initial layouts it carries) into an
    /// adaptive engine. The paper stresses H2O "can adapt regardless of the
    /// initial data layout".
    pub fn new(relation: Relation, config: EngineConfig) -> Self {
        let model = CostModel::new(config.hardware);
        H2oEngine {
            window: MonitoringWindow::new(config.window),
            adviser: Adviser::new(model.clone(), config.adviser),
            model,
            opcache: OperatorCache::new(config.opcache_capacity, config.compile_cost),
            relation,
            config,
            pending: Vec::new(),
            epoch: 0,
            stats: EngineStats::default(),
            sel_history: HashMap::new(),
            last_report: None,
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The layout catalog (Data Layout Manager state).
    pub fn catalog(&self) -> &h2o_storage::LayoutCatalog {
        self.relation.catalog()
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.shifts_detected = self.window.shifts_detected();
        s
    }

    /// Operator-cache statistics (hits/misses/simulated compile time).
    pub fn opcache_stats(&self) -> h2o_exec::opcache::CacheStats {
        self.opcache.stats()
    }

    /// Current monitoring-window size.
    pub fn window_size(&self) -> usize {
        self.window.size()
    }

    /// Layouts recommended but not yet materialized.
    pub fn pending(&self) -> &[GroupSpec] {
        &self.pending
    }

    /// What the engine did for the most recent query.
    pub fn last_report(&self) -> Option<&QueryReport> {
        self.last_report.as_ref()
    }

    /// Executes a query, adapting as a side effect.
    pub fn execute(&mut self, q: &Query) -> Result<QueryResult, EngineError> {
        self.execute_with_hint(q, None)
    }

    /// Executes a query with an explicit selectivity hint for planning
    /// (benchmark harnesses that control the workload know the true
    /// selectivity; without a hint the engine uses observed history).
    pub fn execute_with_hint(
        &mut self,
        q: &Query,
        selectivity_hint: Option<f64>,
    ) -> Result<QueryResult, EngineError> {
        self.epoch += 1;
        self.stats.queries += 1;
        let sel = self.estimate_selectivity(q, selectivity_hint);
        let pattern = AccessPattern::of(q, sel);

        let result = match self.try_pending(q, &pattern) {
            Some(r) => r?,
            None => {
                let (plan, cost) = self.plan(&pattern)?;
                let op = self
                    .opcache
                    .get_or_compile(self.relation.catalog(), &plan, q)?;
                for &id in &plan.layouts {
                    self.relation.catalog_mut().note_use(id, self.epoch);
                }
                self.last_report = Some(QueryReport {
                    strategy: plan.strategy,
                    layouts: plan.layouts.clone(),
                    created_layout: None,
                    estimated_cost: cost,
                    selectivity_estimate: sel,
                });
                exec_execute_with_policy(self.relation.catalog(), &op, &self.config.exec_policy())?
            }
        };

        // Selectivity feedback (projection queries expose the match count).
        if !q.is_aggregate() && self.relation.rows() > 0 && !q.filter().is_always_true() {
            let observed = result.rows() as f64 / self.relation.rows() as f64;
            let sig = Self::filter_signature(q);
            let entry = self.sel_history.entry(sig).or_insert(observed);
            *entry = 0.5 * *entry + 0.5 * observed;
        }

        // Monitoring + periodic adaptation.
        let adapt_now = self.window.observe(pattern);
        if adapt_now && self.config.adaptive {
            self.adapt();
        }
        Ok(result)
    }

    /// Picks the cheapest `(covering layouts, strategy)` plan for a
    /// pattern: the query-processor half of Fig. 3. Exposed for tests and
    /// the harness (`EXPLAIN`-style introspection).
    pub fn plan(&self, pattern: &AccessPattern) -> Result<(AccessPlan, f64), EngineError> {
        let catalog = self.relation.catalog();
        let needed = pattern.all_attrs();
        let mut plans: Vec<AccessPlan> = Vec::new();
        for cover in catalog.cover_alternatives(&needed)? {
            let ids: Vec<LayoutId> = cover.iter().map(|(id, _)| *id).collect();
            for strategy in Strategy::ALL {
                plans.push(AccessPlan::new(ids.clone(), strategy));
            }
        }
        if let Some(sup) = catalog.find_superset(&needed) {
            for strategy in [Strategy::FusedVolcano, Strategy::SelVector] {
                plans.push(AccessPlan::new(vec![sup], strategy));
            }
        }
        plans.dedup();

        let mut best: Option<(AccessPlan, f64)> = None;
        for plan in plans {
            let groups: Vec<GroupSpec> = plan
                .layouts
                .iter()
                .map(|&id| {
                    catalog
                        .group(id)
                        .map(|g| GroupSpec::new(g.attr_set().clone()))
                })
                .collect::<Result<_, _>>()?;
            let cost = self.model.plan_cost(
                pattern,
                &PlanSpec {
                    strategy: plan.strategy,
                    groups,
                    residence: Residence::Memory,
                },
                self.relation.rows(),
            );
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
        best.ok_or_else(|| {
            EngineError::Storage(StorageError::NoCover(needed.first().unwrap_or(AttrId(0))))
        })
    }

    /// Lazy materialization: if a pending layout covers this query and the
    /// cost model says the query benefits, materialize it *while answering
    /// the query* through the fused reorganization operator.
    fn try_pending(
        &mut self,
        q: &Query,
        pattern: &AccessPattern,
    ) -> Option<Result<QueryResult, EngineError>> {
        if !self.config.adaptive || self.pending.is_empty() {
            return None;
        }
        let needed = pattern.all_attrs();
        let current_cost = match self.plan(pattern) {
            Ok((_, c)) => c,
            Err(e) => return Some(Err(e)),
        };

        // Find the pending layout whose materialization most improves this
        // query: hypothetically add it to the configuration, cover any
        // remaining attributes from the existing layouts, and compare the
        // best achievable cost against the current best plan. (The
        // window-level amortization was already established by the
        // adviser; this is the per-query "can benefit" check of §3.2.)
        let catalog = self.relation.catalog();
        let mut best: Option<(usize, f64)> = None;
        for (i, g) in self.pending.iter().enumerate() {
            if !needed.intersects(&g.attrs) || catalog.find_exact(&g.attrs).is_some() {
                continue;
            }
            let remaining = needed.difference(&g.attrs);
            let mut groups = vec![g.clone()];
            if !remaining.is_empty() {
                let cover = match catalog.cover(
                    &remaining,
                    h2o_storage::catalog::CoverPolicy::LeastExcessWidth,
                ) {
                    Ok(c) => c,
                    Err(_) => continue, // uncoverable remainder: not a candidate
                };
                for (id, _) in cover {
                    let Ok(src) = catalog.group(id) else { continue };
                    groups.push(GroupSpec::new(src.attr_set().clone()));
                }
            }
            let cost = self.model.best_cost(pattern, &groups, self.relation.rows());
            if cost < current_cost && best.is_none_or(|(_, c)| cost < c) {
                best = Some((i, cost));
            }
        }
        let (idx, new_cost) = best?;
        let g = self.pending[idx].clone();

        // Space budget: evict least-recently-used redundant layouts until
        // the new group fits; skip the materialization if it cannot.
        if let Some(budget) = self.config.space_budget_bytes {
            let new_bytes = g.attrs.len() * h2o_storage::VALUE_BYTES * self.relation.rows();
            while self.relation.catalog().total_bytes() + new_bytes > budget {
                let victim = self.relation.catalog().eviction_candidate()?;
                if self.relation.catalog_mut().drop_group(victim).is_err() {
                    return None;
                }
                self.opcache.invalidate_layout(victim);
                self.stats.layouts_evicted += 1;
            }
        }

        // Generate the fused reorganization operator (charged like any
        // other generated operator) and run it.
        let attrs: Vec<AttrId> = g.attrs.to_vec();
        let charge = self
            .opcache
            .cost_model()
            .cost(attrs.len() + q.select_node_count());
        self.opcache.cost_model().charge(charge);

        let t0 = Instant::now();
        let out = reorg::reorg_and_execute_with(
            self.relation.catalog(),
            &attrs,
            q,
            &self.config.exec_policy(),
        );
        let (group, result) = match out {
            Ok(v) => v,
            Err(e) => return Some(Err(e.into())),
        };
        let id = match self.relation.catalog_mut().add_group(group, self.epoch) {
            Ok(id) => id,
            Err(e) => return Some(Err(e.into())),
        };
        self.stats.reorg_time += t0.elapsed();
        self.stats.layouts_created += 1;
        self.pending.remove(idx);
        self.last_report = Some(QueryReport {
            strategy: Strategy::FusedVolcano,
            layouts: vec![id],
            created_layout: Some(id),
            estimated_cost: new_cost,
            selectivity_estimate: pattern.selectivity,
        });
        Some(Ok(result))
    }

    /// One adaptation round: feed the monitoring window to the adviser and
    /// refresh the pending-layout list.
    fn adapt(&mut self) {
        self.stats.adaptations += 1;
        let current: Vec<GroupSpec> = self
            .relation
            .catalog()
            .groups()
            .map(|g| GroupSpec::new(g.attr_set().clone()))
            .collect();
        let t0 = Instant::now();
        let rec = self
            .adviser
            .recommend(&self.window.snapshot(), &current, self.relation.rows());
        self.stats.advise_time += t0.elapsed();
        if !rec.groups.is_empty() {
            self.stats.recommendations += 1;
            self.pending = rec.groups;
        }
        self.window.adaptation_done();
    }

    /// Materializes a layout *offline* (separate pass, no query). Used by
    /// the Fig. 13 comparison and by explicit administration.
    pub fn materialize_now(&mut self, attrs: &[AttrId]) -> Result<LayoutId, EngineError> {
        let t0 = Instant::now();
        let group =
            reorg::materialize_with(self.relation.catalog(), attrs, &self.config.exec_policy())?;
        let id = self.relation.catalog_mut().add_group(group, self.epoch)?;
        self.stats.reorg_time += t0.elapsed();
        self.stats.layouts_created += 1;
        Ok(id)
    }

    /// Drops a layout (refusing to uncover attributes) and invalidates
    /// dependent cached operators.
    pub fn drop_layout(&mut self, id: LayoutId) -> Result<(), EngineError> {
        self.relation.catalog_mut().drop_group(id)?;
        self.opcache.invalidate_layout(id);
        Ok(())
    }

    /// Appends tuples (full schema order) to the relation. Every
    /// coexisting layout receives the rows, so all plans keep working; the
    /// write cost scales with the number of live layouts — the multi-format
    /// trade-off the paper acknowledges ("updates might become quite
    /// expensive" for redundant layouts).
    pub fn insert(&mut self, tuples: &[Vec<h2o_storage::Value>]) -> Result<(), EngineError> {
        self.relation.catalog_mut().append_rows(tuples)?;
        self.stats.rows_appended += tuples.len() as u64;
        Ok(())
    }

    /// A human-readable description of the plan the engine would choose
    /// for `q` right now (an `EXPLAIN`): chosen layouts, strategy, cost
    /// estimate, and whether a pending layout would be materialized first.
    pub fn explain(&self, q: &Query) -> Result<String, EngineError> {
        use std::fmt::Write;
        let sel = self.estimate_selectivity(q, None);
        let pattern = AccessPattern::of(q, sel);
        let (plan, cost) = self.plan(&pattern)?;
        let mut out = String::new();
        writeln!(out, "query: {q}").unwrap();
        writeln!(
            out,
            "estimated selectivity: {sel:.4} ({})",
            if q.filter().is_always_true() {
                "no filter"
            } else {
                "from history/default"
            }
        )
        .unwrap();
        let needed = pattern.all_attrs();
        let pending_hit = self.pending.iter().any(|g| {
            needed.intersects(&g.attrs) && self.relation.catalog().find_exact(&g.attrs).is_none()
        });
        if self.config.adaptive && pending_hit {
            writeln!(
                out,
                "pending layout available: may materialize while answering"
            )
            .unwrap();
        }
        writeln!(out, "strategy: {}", plan.strategy.name()).unwrap();
        writeln!(out, "estimated cost: {cost:.6}").unwrap();
        for &id in &plan.layouts {
            let g = self.relation.catalog().group(id)?;
            let attrs: Vec<String> = g.attrs().iter().map(|a| a.to_string()).collect();
            writeln!(
                out,
                "  scan {id} width={} rows={} attrs=[{}]",
                g.width(),
                g.rows(),
                attrs.join(",")
            )
            .unwrap();
        }
        Ok(out)
    }

    fn estimate_selectivity(&self, q: &Query, hint: Option<f64>) -> f64 {
        if q.filter().is_always_true() {
            return 1.0;
        }
        if let Some(h) = hint {
            return h.clamp(0.0, 1.0);
        }
        let sig = Self::filter_signature(q);
        self.sel_history
            .get(&sig)
            .copied()
            .unwrap_or(self.config.default_selectivity)
    }

    /// Signature of a filter (attributes, operators and constants): the key
    /// for observed-selectivity history.
    fn filter_signature(q: &Query) -> u64 {
        let mut h = DefaultHasher::new();
        for p in q.filter().predicates() {
            p.hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_expr::{interpret, Aggregate, Conjunction, Expr, Predicate};
    use h2o_storage::{Schema, Value};

    fn columns(n_attrs: usize, rows: usize) -> Vec<Vec<Value>> {
        (0..n_attrs)
            .map(|k| {
                (0..rows)
                    .map(|r| (((k * 131 + r * 31) % 2001) as Value) - 1000)
                    .collect()
            })
            .collect()
    }

    fn engine(n_attrs: usize, rows: usize, config: EngineConfig) -> H2oEngine {
        let schema = Schema::with_width(n_attrs).into_shared();
        let rel = Relation::columnar(schema, columns(n_attrs, rows)).unwrap();
        H2oEngine::new(rel, config)
    }

    fn expr_query(select: &[u32], where_attr: u32, bound: Value) -> Query {
        Query::project(
            [Expr::sum_of(select.iter().map(|&i| AttrId(i)))],
            Conjunction::of([Predicate::lt(where_attr, bound)]),
        )
        .unwrap()
    }

    #[test]
    fn engine_answers_match_interpreter() {
        let mut e = engine(8, 500, EngineConfig::no_compile_latency());
        let queries = [
            expr_query(&[0, 1, 2], 3, 100),
            Query::aggregate(
                [Aggregate::max(Expr::col(4u32)), Aggregate::count()],
                Conjunction::of([Predicate::gt(5u32, -500)]),
            )
            .unwrap(),
            Query::project([Expr::col(7u32)], Conjunction::always()).unwrap(),
        ];
        for q in &queries {
            let want = interpret(e.catalog(), q).unwrap();
            let got = e.execute(q).unwrap();
            assert_eq!(got.fingerprint(), want.fingerprint(), "{q}");
        }
        assert_eq!(e.stats().queries, 3);
    }

    #[test]
    fn repeated_hot_queries_trigger_adaptation_and_lazy_creation() {
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 10;
        cfg.window.min = 4;
        let mut e = engine(30, 4000, cfg);
        // 40 near-identical queries over {0..4} with filter on 5.
        for i in 0..40 {
            let q = expr_query(&[0, 1, 2, 3, 4], 5, (i % 7) * 100 - 300);
            let want = interpret(e.catalog(), &q).unwrap();
            let got = e.execute(&q).unwrap();
            assert_eq!(got.fingerprint(), want.fingerprint(), "query {i}");
        }
        let stats = e.stats();
        assert!(
            stats.adaptations >= 1,
            "window must have triggered adaptation"
        );
        assert!(
            stats.layouts_created >= 1,
            "hot cluster must have produced a materialized group; stats: {stats:?}"
        );
        // The created layout must cover the hot select cluster (the
        // where-clause attribute keeps its own layout — the paper's
        // two-group design of Fig. 6).
        let hot: h2o_storage::AttrSet = [0usize, 1, 2, 3, 4].into_iter().collect();
        assert!(
            e.catalog().find_superset(&hot).is_some(),
            "expected a group covering the hot select cluster"
        );
        // And later queries should be using it.
        let report = e.last_report().unwrap();
        let used = &report.layouts;
        let wide_used = used
            .iter()
            .any(|&id| e.catalog().group(id).unwrap().width() > 1);
        assert!(
            wide_used,
            "later queries should run on the new group: {report:?}"
        );
    }

    #[test]
    fn results_stay_correct_across_reorganization() {
        // Differential-test the engine against the interpreter on every
        // query of a shifting workload (correctness during adaptation is
        // the engine's core invariant).
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 6;
        cfg.window.min = 3;
        let mut e = engine(20, 1500, cfg);
        let phases: [(&[u32], u32); 2] = [(&[0, 1, 2], 3), (&[10, 11, 12, 13], 14)];
        let mut qid = 0;
        for (select, w) in phases {
            for i in 0..25 {
                let q = expr_query(select, w, (i % 11) * 50 - 250);
                let want = interpret(e.catalog(), &q).unwrap();
                let got = e.execute(&q).unwrap();
                assert_eq!(got.fingerprint(), want.fingerprint(), "query {qid}");
                qid += 1;
            }
        }
        assert!(e.stats().queries == 50);
    }

    #[test]
    fn non_adaptive_engine_never_creates_layouts() {
        let mut cfg = EngineConfig::non_adaptive();
        cfg.compile_cost = h2o_exec::CompileCostModel::ZERO;
        cfg.window.initial = 5;
        let mut e = engine(12, 800, cfg);
        for i in 0..30 {
            let q = expr_query(&[0, 1, 2], 3, i * 10);
            e.execute(&q).unwrap();
        }
        assert_eq!(e.stats().layouts_created, 0);
        assert_eq!(e.stats().adaptations, 0);
        assert_eq!(e.catalog().group_count(), 12);
    }

    #[test]
    fn plan_picks_single_group_when_available() {
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 200; // no adaptation interference
        let mut e = engine(10, 500, cfg);
        let id = e
            .materialize_now(&[AttrId(0), AttrId(1), AttrId(2)])
            .unwrap();
        let q = Query::aggregate(
            [Aggregate::sum(Expr::sum_of([
                AttrId(0),
                AttrId(1),
                AttrId(2),
            ]))],
            Conjunction::always(),
        )
        .unwrap();
        let pattern = AccessPattern::of(&q, 1.0);
        let (plan, _) = e.plan(&pattern).unwrap();
        assert!(
            plan.layouts.contains(&id) || plan.layouts.len() <= 3,
            "planner should consider the tailored group: {plan:?}"
        );
        // Execute and verify.
        let want = interpret(e.catalog(), &q).unwrap();
        assert_eq!(e.execute(&q).unwrap(), want);
    }

    #[test]
    fn selectivity_feedback_updates_history() {
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 100;
        cfg.default_selectivity = 0.5;
        let mut e = engine(6, 1000, cfg);
        let q = expr_query(&[0, 1], 2, -900); // very selective
        e.execute(&q).unwrap();
        let first_est = e.last_report().unwrap().selectivity_estimate;
        assert!((first_est - 0.5).abs() < 1e-9, "first run uses the default");
        e.execute(&q).unwrap();
        let second_est = e.last_report().unwrap().selectivity_estimate;
        assert!(
            second_est < 0.3,
            "second run must use observed selectivity, got {second_est}"
        );
    }

    #[test]
    fn hint_overrides_history() {
        let mut e = engine(6, 500, EngineConfig::no_compile_latency());
        let q = expr_query(&[0], 1, 0);
        e.execute_with_hint(&q, Some(0.05)).unwrap();
        assert!((e.last_report().unwrap().selectivity_estimate - 0.05).abs() < 1e-9);
    }

    #[test]
    fn materialize_now_and_drop_layout() {
        let mut e = engine(5, 300, EngineConfig::no_compile_latency());
        let id = e.materialize_now(&[AttrId(1), AttrId(3)]).unwrap();
        assert_eq!(e.catalog().group_count(), 6);
        e.drop_layout(id).unwrap();
        assert_eq!(e.catalog().group_count(), 5);
        // Dropping a base column must fail (would uncover).
        let base = e.catalog().layout_ids()[0];
        assert!(matches!(
            e.drop_layout(base),
            Err(EngineError::Storage(StorageError::WouldUncover(_)))
        ));
    }

    #[test]
    fn inserts_are_visible_in_every_layout() {
        let mut e = engine(6, 100, EngineConfig::no_compile_latency());
        e.materialize_now(&[AttrId(0), AttrId(1), AttrId(2)])
            .unwrap();
        let q = Query::aggregate(
            [Aggregate::count(), Aggregate::max(Expr::col(1u32))],
            Conjunction::always(),
        )
        .unwrap();
        let before = e.execute(&q).unwrap();
        e.insert(&[vec![1, i64::MAX, 3, 4, 5, 6], vec![0; 6]])
            .unwrap();
        let after = e.execute(&q).unwrap();
        assert_eq!(after.row(0)[0], before.row(0)[0] + 2);
        assert_eq!(after.row(0)[1], i64::MAX, "new max must be visible");
        assert_eq!(e.stats().rows_appended, 2);
        // Every layout grew.
        assert!(e.catalog().groups().all(|g| g.rows() == 102));
        // Differential check post-insert.
        let want = interpret(e.catalog(), &q).unwrap();
        assert_eq!(e.execute(&q).unwrap(), want);
    }

    #[test]
    fn insert_rejects_ragged_tuples() {
        let mut e = engine(4, 10, EngineConfig::no_compile_latency());
        assert!(e.insert(&[vec![1, 2]]).is_err());
        assert_eq!(e.catalog().rows(), 10);
    }

    #[test]
    fn space_budget_caps_layout_growth() {
        let rows = 3000;
        let n_attrs = 30;
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 6;
        cfg.window.min = 4;
        // Budget: base columns + roughly two extra 10-attr groups.
        cfg.space_budget_bytes = Some((n_attrs + 22) * 8 * rows);
        let mut e = engine(n_attrs, rows, cfg);
        // Alternate between three hot clusters so the adviser wants
        // several layouts over time.
        for i in 0..90u32 {
            let base = (i / 10 % 3) * 10;
            let q = expr_query(&[base, base + 1, base + 2, base + 3], base + 4, 0);
            let want = interpret(e.catalog(), &q).unwrap();
            let got = e.execute(&q).unwrap();
            assert_eq!(got.fingerprint(), want.fingerprint(), "query {i}");
            assert!(
                e.catalog().total_bytes() <= cfg.space_budget_bytes.unwrap(),
                "budget violated at query {i}: {} bytes",
                e.catalog().total_bytes()
            );
        }
        assert!(e.catalog().covers_schema());
    }

    #[test]
    fn explain_describes_the_plan() {
        let mut e = engine(8, 200, EngineConfig::no_compile_latency());
        let q = expr_query(&[0, 1, 2], 3, 50);
        let text = e.explain(&q).unwrap();
        assert!(text.contains("strategy:"), "{text}");
        assert!(text.contains("estimated cost:"), "{text}");
        assert!(text.contains("scan L"), "{text}");
        // Still executable afterwards.
        e.execute(&q).unwrap();
    }

    #[test]
    fn empty_relation_is_fine() {
        let schema = Schema::with_width(3).into_shared();
        let rel = Relation::columnar(schema, vec![vec![], vec![], vec![]]).unwrap();
        let mut e = H2oEngine::new(rel, EngineConfig::no_compile_latency());
        let q = Query::project([Expr::col(0u32)], Conjunction::always()).unwrap();
        assert!(e.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let mut e = engine(3, 100, EngineConfig::no_compile_latency());
        let q = Query::project([Expr::col(99u32)], Conjunction::always()).unwrap();
        assert!(e.execute(&q).is_err());
    }
}
