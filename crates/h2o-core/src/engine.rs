//! The H2O engine: query processor + adaptation mechanism (paper Fig. 3),
//! shared across concurrent clients.
//!
//! # Concurrency model
//!
//! The engine is queried through `&self` and is `Send + Sync`: wrap it in an
//! `Arc` (or borrow it into scoped threads) and any number of clients can
//! call [`H2oEngine::run`] at once.
//!
//! * **Snapshot-isolated reads.** The layout catalog is published as an
//!   [`CatalogSnapshot`] (`Arc<LayoutCatalog>`) behind a single swap point.
//!   A query clones the `Arc` once and plans, compiles and scans against
//!   that immutable version — it can never observe a torn catalog, a
//!   half-appended batch, or a half-admitted layout.
//! * **Serialized writes.** Appends, layout materialization and drops run
//!   behind one writer mutex. A writer clones the current catalog value
//!   (cheap: groups are `Arc`-shared inside the catalog), mutates the
//!   clone, and atomically publishes it. In-flight readers keep their old
//!   snapshot and never block.
//! * **Off-path adaptation.** With
//!   [`EngineConfig::background_reorg`] set, the query path only *observes*
//!   patterns; advice and reorganization happen in [`H2oEngine::maintain`]
//!   — pump it explicitly or let [`H2oEngine::spawn_reorganizer`] run it on
//!   a dedicated thread. New groups are built from a snapshot with the
//!   parallel `reorg` kernels and published atomically. With the flag off
//!   the paper's lazy fused materialization runs on the query path as
//!   before (serialized behind the writer lock; a contended lock simply
//!   skips the lazy path for that query).

use crate::config::EngineConfig;
use crate::request::{ExecOptions, ExecSnapshot, Outcome, Request, RequestKind};
use crate::stats::EngineStats;
use h2o_adapt::{AdviceQueue, Adviser, SharedWindow};
use h2o_cost::{AccessPattern, CostModel, GroupSpec, JoinRole, PlanSpec, Residence};
use h2o_exec::{
    execute_join_with_policy as exec_execute_join_with_policy,
    execute_join_with_policy_cancel as exec_execute_join_with_policy_cancel,
    execute_with_policy_cancel as exec_execute_with_policy_cancel,
    execute_with_policy_stats as exec_execute_with_policy_stats, reorg, AccessPlan, CancelToken,
    ExecError, JoinExecStats, OperatorCache, Strategy,
};
use h2o_expr::{JoinQuery, Query, QueryError, QueryResult, Side};
use h2o_storage::{
    failpoints, AttrId, CatalogSnapshot, Epoch, LayoutCatalog, LayoutId, Relation, Schema,
    StorageError,
};
use parking_lot::{Mutex, RwLock};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    Exec(ExecError),
    Storage(StorageError),
    /// The query failed plan-time validation against the schema — most
    /// prominently [`QueryError::TypeMismatch`] for cross-type predicates
    /// or arithmetic. Raised before planning, monitoring or adaptation see
    /// the query.
    Query(QueryError),
    /// Query execution panicked. The panic was caught at the engine
    /// boundary (it never crosses into the caller and never aborts the
    /// process); `payload` is the stringified panic message. The engine
    /// stays fully usable — no lock is poisoned (the vendored
    /// `parking_lot` recovers poisoned state) and no partial catalog
    /// version was published (copy-on-write mutations are simply
    /// abandoned).
    ExecutionPanicked {
        /// The panic message, best-effort stringified.
        payload: String,
    },
    /// The query's [`CancelToken`] was cancelled before it finished. No
    /// partial result, catalog version, cached operator or statistics
    /// feedback is ever published from a cancelled query.
    Cancelled,
    /// The query's deadline (explicit via
    /// [`ExecOptions::deadline`](crate::ExecOptions::deadline), or
    /// implicit via [`EngineConfig::query_deadline`]) expired before it
    /// finished. Same no-partial-effects guarantee as
    /// [`EngineError::Cancelled`].
    Timeout,
    /// The query's morsel budget
    /// ([`ExecOptions::budget`](crate::ExecOptions::budget)) ran out
    /// before it finished. Same no-partial-effects guarantee as
    /// [`EngineError::Cancelled`].
    BudgetExhausted,
    /// The OS refused to spawn a background thread
    /// ([`H2oEngine::spawn_reorganizer`]). Recoverable: the engine keeps
    /// working, callers can degrade to pumping
    /// [`H2oEngine::maintain`] inline.
    Spawn(String),
    /// A relation-binding operation was invalid — e.g.
    /// [`H2oEngine::add_relation`] with the reserved primary name.
    /// (Resolving a name the engine does not hold is
    /// [`QueryError::UnknownRelation`] under [`EngineError::Query`].)
    Relation(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Exec(e) => write!(f, "execution error: {e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Query(e) => write!(f, "invalid query: {e}"),
            EngineError::ExecutionPanicked { payload } => {
                write!(f, "query execution panicked: {payload}")
            }
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::Timeout => write!(f, "query deadline expired"),
            EngineError::BudgetExhausted => write!(f, "query morsel budget exhausted"),
            EngineError::Spawn(e) => write!(f, "failed to spawn engine thread: {e}"),
            EngineError::Relation(e) => write!(f, "relation binding error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        // Surface plan-time validation failures uniformly as Query errors,
        // and cooperative-stop outcomes as their own first-class variants,
        // no matter which layer caught them.
        match e {
            ExecError::Query(q) => EngineError::Query(q),
            ExecError::Cancelled => EngineError::Cancelled,
            ExecError::DeadlineExpired => EngineError::Timeout,
            ExecError::BudgetExhausted => EngineError::BudgetExhausted,
            other => EngineError::Exec(other),
        }
    }
}

/// Best-effort stringification of a caught panic payload (`&str` and
/// `String` payloads cover `panic!`/`assert!`/`expect` in practice).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

/// What the engine did for the most recent query — the introspection hook
/// the benchmark harness uses to annotate per-query timelines (Fig. 7's
/// "queries 23 and 29 pay the creation overhead").
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReport {
    /// Strategy of the executed plan (`FusedVolcano` for fused
    /// reorganization queries).
    pub strategy: Strategy,
    /// Layouts the plan read.
    pub layouts: Vec<LayoutId>,
    /// The layout materialized during this query, if any.
    pub created_layout: Option<LayoutId>,
    /// The cost model's estimate for the chosen plan.
    pub estimated_cost: f64,
    /// Selectivity estimate used for planning.
    pub selectivity_estimate: f64,
}

/// The reserved name of the engine's primary relation — the one passed to
/// [`H2oEngine::new`] and served by the single-relation query path. Join
/// queries bind it by this name; [`H2oEngine::add_relation`] cannot rebind
/// it.
pub const PRIMARY_RELATION: &str = "R";

/// A consistent point-in-time view of every relation the engine serves:
/// the primary relation's published catalog version plus the published
/// version of each named secondary relation. A join resolves **both** of
/// its sides against one `DbSnapshot`, so the two sides can never see
/// catalog versions from different points of the same relation's history —
/// the multi-relation extension of the engine's snapshot isolation.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    primary: CatalogSnapshot,
    named: Arc<HashMap<String, CatalogSnapshot>>,
}

impl DbSnapshot {
    /// The primary relation's catalog version.
    pub fn primary(&self) -> &CatalogSnapshot {
        &self.primary
    }

    /// Resolves a relation name ([`PRIMARY_RELATION`] or a name bound via
    /// [`H2oEngine::add_relation`]) to its catalog version.
    pub fn relation(&self, name: &str) -> Result<&CatalogSnapshot, QueryError> {
        if name == PRIMARY_RELATION {
            return Ok(&self.primary);
        }
        self.named
            .get(name)
            .ok_or_else(|| QueryError::UnknownRelation(name.to_string()))
    }

    /// Every relation name this snapshot can resolve, primary first, the
    /// rest sorted.
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.named.keys().cloned().collect();
        names.sort();
        names.insert(0, PRIMARY_RELATION.to_string());
        names
    }
}

/// What the engine did for the most recent join query — build-side choice,
/// per-side plans and selectivity estimates, and the executed join's
/// cardinality counters.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinReport {
    /// Whether the left relation was the hash-table build side.
    pub build_is_left: bool,
    /// Strategy of the left side's qualifying-row scan.
    pub left_strategy: Strategy,
    /// Strategy of the right side's qualifying-row scan.
    pub right_strategy: Strategy,
    /// Layouts the left side's plan read.
    pub left_layouts: Vec<LayoutId>,
    /// Layouts the right side's plan read.
    pub right_layouts: Vec<LayoutId>,
    /// The cost model's estimate for the chosen order (build + probe).
    pub estimated_cost: f64,
    /// Selectivity estimate used for the left side.
    pub left_selectivity_estimate: f64,
    /// Selectivity estimate used for the right side.
    pub right_selectivity_estimate: f64,
    /// Observed per-side cardinalities of the executed join.
    pub exec: JoinExecStats,
}

/// What one [`H2oEngine::maintain`] pump did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Whether a due adaptation round ran (adviser invocation).
    pub adapted: bool,
    /// Pending layouts built and published by this pump.
    pub layouts_built: usize,
}

/// The adaptive engine, shareable across threads (`run(&self, ...)`).
pub struct H2oEngine {
    config: EngineConfig,
    model: CostModel,
    adviser: Adviser,
    opcache: OperatorCache,
    /// The publish point: the currently visible catalog version of the
    /// primary relation. Readers clone the `Arc` (snapshot isolation);
    /// writers swap in a new version.
    catalog: RwLock<CatalogSnapshot>,
    /// Named secondary relations ([`H2oEngine::add_relation`]), published
    /// as one immutable map behind its own swap point. Mutations
    /// (add/append) run behind the same `writer` lock as primary-catalog
    /// mutations, clone the map, and swap — readers holding a
    /// [`DbSnapshot`] keep the old map.
    secondary: RwLock<Arc<HashMap<String, CatalogSnapshot>>>,
    /// Serializes every catalog mutation (append / reorganize / drop).
    /// Readers never take it.
    writer: Mutex<()>,
    window: SharedWindow,
    /// Layouts recommended by the last adaptation round, awaiting
    /// materialization (lazy on the query path, or eager in `maintain()`).
    pending: AdviceQueue,
    epoch: AtomicU64,
    /// Set when the window completes an interval in background-reorg mode;
    /// consumed by the next `maintain()` pump.
    adapt_due: AtomicBool,
    /// Coalesces lazy-mode adaptation rounds: the window keeps reporting
    /// "interval complete" until `adaptation_done` resets it, so without
    /// this guard N concurrent queries would each run a redundant adviser
    /// round (and grow the window N times too fast).
    adapt_running: AtomicBool,
    stats: Mutex<EngineStats>,
    /// Observed selectivity per filter signature (exponentially smoothed).
    sel_history: Mutex<HashMap<u64, f64>>,
    last_report: Mutex<Option<QueryReport>>,
    last_join_report: Mutex<Option<JoinReport>>,
}

// Compile-time proof the engine may be shared across client threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<H2oEngine>();
};

impl H2oEngine {
    /// Wraps a relation (with whatever initial layouts it carries) into an
    /// adaptive engine. The paper stresses H2O "can adapt regardless of the
    /// initial data layout".
    pub fn new(relation: Relation, config: EngineConfig) -> Self {
        let model = CostModel::new(config.hardware);
        H2oEngine {
            window: SharedWindow::new(config.window),
            adviser: Adviser::new(model.clone(), config.adviser),
            model,
            opcache: OperatorCache::new(config.opcache_capacity, config.compile_cost),
            catalog: RwLock::new(Arc::new(relation.into_catalog())),
            secondary: RwLock::new(Arc::new(HashMap::new())),
            writer: Mutex::new(()),
            config,
            pending: AdviceQueue::new(),
            epoch: AtomicU64::new(0),
            adapt_due: AtomicBool::new(false),
            adapt_running: AtomicBool::new(false),
            stats: Mutex::new(EngineStats::default()),
            sel_history: Mutex::new(HashMap::new()),
            last_report: Mutex::new(None),
            last_join_report: Mutex::new(None),
        }
    }

    /// The currently published catalog version. The returned snapshot is
    /// immutable and stays fully readable (and row-aligned) no matter what
    /// writers publish afterwards.
    pub fn snapshot(&self) -> CatalogSnapshot {
        self.catalog.read().clone()
    }

    /// The layout catalog (Data Layout Manager state) — an alias for
    /// [`Self::snapshot`] kept for the established `engine.catalog()` call
    /// sites.
    pub fn catalog(&self) -> CatalogSnapshot {
        self.snapshot()
    }

    /// A consistent point-in-time view of every relation the engine serves
    /// (primary + named secondaries). Joins resolve both sides against one
    /// such snapshot.
    pub fn db_snapshot(&self) -> DbSnapshot {
        DbSnapshot {
            primary: self.catalog.read().clone(),
            named: self.secondary.read().clone(),
        }
    }

    /// Binds a named secondary relation. Rebinding an existing name
    /// replaces it atomically (in-flight snapshots keep the old version);
    /// binding the reserved primary name ([`PRIMARY_RELATION`]) is an
    /// error. Secondary relations are served by the multi-relation query
    /// path ([`Request::join`] through [`Self::run`]) and
    /// [`Self::insert_into`]; the adaptation mechanism observes and
    /// reorganizes only the primary.
    pub fn add_relation(&self, name: &str, relation: Relation) -> Result<(), EngineError> {
        if name == PRIMARY_RELATION {
            return Err(EngineError::Relation(format!(
                "{PRIMARY_RELATION:?} is the reserved primary relation name"
            )));
        }
        let _w = self.writer.lock();
        let mut map = (**self.secondary.read()).clone();
        map.insert(name.to_string(), Arc::new(relation.into_catalog()));
        *self.secondary.write() = Arc::new(map);
        Ok(())
    }

    /// The published catalog version of a named relation
    /// ([`PRIMARY_RELATION`] or a bound secondary).
    pub fn relation_snapshot(&self, name: &str) -> Result<CatalogSnapshot, EngineError> {
        Ok(self.db_snapshot().relation(name)?.clone())
    }

    /// Appends tuples to a named relation: [`Self::insert`] semantics
    /// (atomic publish, every coexisting layout receives the rows),
    /// addressed by name. The primary relation's name routes to
    /// [`Self::insert`].
    pub fn insert_into(
        &self,
        name: &str,
        tuples: &[Vec<h2o_storage::Value>],
    ) -> Result<(), EngineError> {
        if name == PRIMARY_RELATION {
            return self.insert(tuples);
        }
        if tuples.is_empty() {
            self.db_snapshot().relation(name)?; // still validate the name
            return Ok(());
        }
        let _w = self.writer.lock();
        let map = self.secondary.read().clone();
        let snap = map
            .get(name)
            .ok_or_else(|| QueryError::UnknownRelation(name.to_string()))?;
        let mut new_cat = (**snap).clone();
        let delta = new_cat.append_rows(tuples)?;
        {
            let mut s = self.stats.lock();
            s.rows_appended += tuples.len() as u64;
            s.bytes_cloned_on_write += delta.bytes_cloned;
            s.segments_sealed += delta.segments_sealed;
            s.snapshots_published += 1;
        }
        let mut new_map = (*map).clone();
        new_map.insert(name.to_string(), Arc::new(new_cat));
        *self.secondary.write() = Arc::new(new_map);
        Ok(())
    }

    /// Swaps in a new catalog version. Callers must hold the writer lock.
    fn publish(&self, new_catalog: LayoutCatalog) -> CatalogSnapshot {
        failpoints::hit("catalog_publish");
        let arc = Arc::new(new_catalog);
        *self.catalog.write() = arc.clone();
        self.stats.lock().snapshots_published += 1;
        arc
    }

    /// Engine statistics.
    pub fn stats(&self) -> EngineStats {
        let mut s = *self.stats.lock();
        s.shifts_detected = self.window.shifts_detected();
        s
    }

    /// Operator-cache statistics (hits/misses/simulated compile time).
    pub fn opcache_stats(&self) -> h2o_exec::opcache::CacheStats {
        self.opcache.stats()
    }

    /// Current monitoring-window size.
    pub fn window_size(&self) -> usize {
        self.window.size()
    }

    /// Layouts recommended but not yet materialized (a point-in-time copy).
    pub fn pending(&self) -> Vec<GroupSpec> {
        self.pending.get()
    }

    /// What the engine did for the most recent query (racy under concurrent
    /// clients — it reports *some* recent query's plan).
    pub fn last_report(&self) -> Option<QueryReport> {
        self.last_report.lock().clone()
    }

    /// The exponentially smoothed selectivity the engine has observed for
    /// queries with `q`'s filter signature, if any.
    pub fn observed_selectivity(&self, q: &Query) -> Option<f64> {
        if q.filter().is_always_true() {
            return None;
        }
        self.sel_history
            .lock()
            .get(&Self::filter_signature(q))
            .copied()
    }

    /// Executes one [`Request`] — **the** engine entry point. The request
    /// carries the query shape (single-relation or join) and its
    /// composable [`ExecOptions`] (selectivity hint, deadline, cancel
    /// token, morsel budget, forced build side).
    ///
    /// Single-relation queries adapt as a side effect: the access pattern
    /// feeds the monitoring window, and (in lazy mode) a beneficial
    /// pending layout is materialized fused with the answer. Join
    /// requests resolve both sides against one [`DbSnapshot`]; the build
    /// side is chosen **greedily from observed per-predicate
    /// selectivity** — the side with fewer estimated post-filter rows
    /// builds the hash table — unless the request forces it. Sides bound
    /// to the primary relation feed the monitoring window, so a join
    /// workload drives the adviser toward key+payload column groups.
    ///
    /// A stopped request (cancelled, past its deadline, over its morsel
    /// budget) fails with the matching typed error and publishes
    /// **nothing** — no result rows, no catalog version, no cached
    /// operator, no statistics feedback. Setting any stop-control option
    /// opts out of the implicit [`EngineConfig::query_deadline`].
    ///
    /// The returned [`Outcome`] carries the result rows *and* the
    /// snapshot they were computed against, so callers can check the
    /// answer against an oracle on the exact same data.
    pub fn run(&self, req: Request<'_>) -> Result<Outcome, EngineError> {
        match req.kind {
            RequestKind::Query(q) => {
                let (snap, result) = self.execute_snapshot_inner(q, &req.opts)?;
                Ok(Outcome {
                    result,
                    snapshot: ExecSnapshot::Relation(snap),
                })
            }
            RequestKind::Join(q) => {
                let (db, result) = self.execute_join_inner(q, &req.opts)?;
                Ok(Outcome {
                    result,
                    snapshot: ExecSnapshot::Db(db),
                })
            }
        }
    }

    /// What the engine did for the most recent join query (racy under
    /// concurrent clients, like [`Self::last_report`]).
    pub fn last_join_report(&self) -> Option<JoinReport> {
        self.last_join_report.lock().clone()
    }

    /// The exponentially smoothed selectivity the engine has observed for
    /// `side`'s residual filter of join queries shaped like `q`, if any.
    pub fn observed_join_selectivity(&self, q: &JoinQuery, side: Side) -> Option<f64> {
        if q.filter(side).is_always_true() {
            return None;
        }
        self.sel_history
            .lock()
            .get(&Self::join_side_signature(q, side))
            .copied()
    }

    /// Resolves a request's options into the execution token: the
    /// caller's token (armed with the request's deadline/budget) when any
    /// stop-control option is set, else the engine's implicit
    /// [`EngineConfig::query_deadline`] token, else none.
    fn resolve_token(&self, opts: &ExecOptions) -> Option<CancelToken> {
        if opts.has_stop_control() {
            let token = opts.cancel.clone().unwrap_or_default();
            if let Some(d) = opts.deadline {
                token.arm_deadline(d);
            }
            if let Some(b) = opts.morsel_budget {
                token.set_budget(b);
            }
            Some(token)
        } else {
            self.config.query_deadline.map(CancelToken::with_deadline)
        }
    }

    /// Bumps the failure counter matching a typed error outcome.
    fn count_failure(&self, e: &EngineError) {
        let mut s = self.stats.lock();
        match e {
            EngineError::ExecutionPanicked { .. } => s.queries_panicked += 1,
            EngineError::Cancelled => s.queries_cancelled += 1,
            EngineError::Timeout => s.queries_timed_out += 1,
            EngineError::BudgetExhausted => s.queries_budget_exhausted += 1,
            _ => {}
        }
    }

    /// Panic-isolation wrapper of the join path, mirroring
    /// [`Self::execute_snapshot_inner`].
    fn execute_join_inner(
        &self,
        q: &JoinQuery,
        opts: &ExecOptions,
    ) -> Result<(DbSnapshot, QueryResult), EngineError> {
        let forced_build_is_left = opts.build_side.map(|s| s == Side::Left);
        let token = self.resolve_token(opts);
        let out = match catch_unwind(AssertUnwindSafe(|| {
            self.execute_join_attempt(q, forced_build_is_left, token.as_ref())
        })) {
            Ok(r) => r,
            Err(payload) => Err(EngineError::ExecutionPanicked {
                payload: panic_message(payload.as_ref()),
            }),
        };
        if let Err(e) = &out {
            self.count_failure(e);
        }
        out
    }

    fn execute_join_attempt(
        &self,
        q: &JoinQuery,
        forced_build_is_left: Option<bool>,
        cancel: Option<&CancelToken>,
    ) -> Result<(DbSnapshot, QueryResult), EngineError> {
        // Plan-time type gate, as on the single-relation path: join keys
        // must share a logical type, dict keys join on codes only when the
        // dictionaries are shared, measures must be typed.
        let checked = h2o_expr::check_join(q)?;
        let db = self.db_snapshot();
        let left = db.relation(q.left().name())?.clone();
        let right = db.relation(q.right().name())?.clone();
        Self::check_schema_binding(q, Side::Left, left.schema())?;
        Self::check_schema_binding(q, Side::Right, right.schema())?;

        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.lock().queries += 1;

        // Per-side patterns with selectivity from observed history.
        let lsel = self.estimate_join_selectivity(q, Side::Left);
        let rsel = self.estimate_join_selectivity(q, Side::Right);
        let lpat = AccessPattern::of_join_side(q, Side::Left, lsel);
        let rpat = AccessPattern::of_join_side(q, Side::Right, rsel);
        let (lplan, _) = self.plan_on(&left, &lpat)?;
        let (rplan, _) = self.plan_on(&right, &rpat)?;

        // Greedy selectivity-driven ordering: build over the side with
        // fewer estimated post-filter rows — physical row count (a
        // property of the snapshot, not a statistic) scaled by observed
        // selectivity. Ties build left.
        let l_est = left.rows() as f64 * lsel;
        let r_est = right.rows() as f64 * rsel;
        let build_is_left = forced_build_is_left.unwrap_or(l_est <= r_est);

        let (lrole, rrole) = if build_is_left {
            (JoinRole::Build, JoinRole::Probe)
        } else {
            (JoinRole::Probe, JoinRole::Build)
        };
        let cost = self.model.join_side_cost(
            &lpat,
            &PlanSpec {
                strategy: lplan.strategy,
                groups: Self::plan_groups(&left, &lplan)?,
                residence: Residence::Memory,
            },
            left.rows(),
            lrole,
        ) + self.model.join_side_cost(
            &rpat,
            &PlanSpec {
                strategy: rplan.strategy,
                groups: Self::plan_groups(&right, &rplan)?,
                residence: Residence::Memory,
            },
            right.rows(),
            rrole,
        );

        let op = self.opcache.get_or_compile_join(
            &left,
            &right,
            &lplan,
            &rplan,
            q,
            &checked,
            build_is_left,
        )?;
        for &id in &lplan.layouts {
            left.note_use(id, epoch);
        }
        for &id in &rplan.layouts {
            right.note_use(id, epoch);
        }
        let (result, exec) = match cancel {
            Some(token) => exec_execute_join_with_policy_cancel(
                &left,
                &right,
                &op,
                &self.config.exec_policy(),
                token,
            )?,
            None => exec_execute_join_with_policy(&left, &right, &op, &self.config.exec_policy())?,
        };
        let skipped = exec.build_segments_skipped + exec.probe_segments_skipped;
        if skipped > 0 || exec.probe_bloom_rejects > 0 {
            let mut stats = self.stats.lock();
            stats.segments_skipped += skipped;
            stats.probe_bloom_rejects += exec.probe_bloom_rejects;
        }

        // Per-side selectivity feedback from the executed join's observed
        // post-filter cardinalities. An early-exited probe side (empty
        // build) scanned nothing and reports nothing.
        let ratio = |rows: usize, input: usize| (input > 0).then(|| rows as f64 / input as f64);
        let (l_obs, r_obs) = if exec.build_is_left {
            (
                ratio(exec.build_rows, exec.build_input_rows),
                ratio(exec.probe_rows, exec.probe_input_rows),
            )
        } else {
            (
                ratio(exec.probe_rows, exec.probe_input_rows),
                ratio(exec.build_rows, exec.build_input_rows),
            )
        };
        for (side, obs) in [(Side::Left, l_obs), (Side::Right, r_obs)] {
            if q.filter(side).is_always_true() {
                continue;
            }
            let Some(observed) = obs else { continue };
            let sig = Self::join_side_signature(q, side);
            let mut hist = self.sel_history.lock();
            let entry = hist.entry(sig).or_insert(observed);
            *entry = 0.5 * *entry + 0.5 * observed;
        }

        // Monitoring: sides bound to the primary relation are observed as
        // access patterns (key + payload = select, residual filter =
        // where), so the adviser learns join-shaped column groups.
        // Secondary relations are static this PR — observing their
        // patterns into the primary's window would only pollute it.
        let mut adapt_now = false;
        for (side, pat) in [(Side::Left, &lpat), (Side::Right, &rpat)] {
            if q.rel(side).name() == PRIMARY_RELATION {
                adapt_now |= self.window.observe(pat.clone());
            }
        }
        if adapt_now && self.config.adaptive {
            if self.config.background_reorg {
                self.adapt_due.store(true, Ordering::Release);
            } else if !self.adapt_running.swap(true, Ordering::AcqRel) {
                self.adapt();
                self.adapt_running.store(false, Ordering::Release);
            }
        }
        // Lazy materialization, join flavour: the fused reorg-and-execute
        // operator only answers single-relation shapes, so instead of
        // materializing *while* answering (the `try_pending` path), the
        // join path materializes a beneficial pending group right after
        // answering — the next join over this shape runs on the improved
        // layout.
        if self.config.adaptive && !self.config.background_reorg {
            for (side, pat) in [(Side::Left, &lpat), (Side::Right, &rpat)] {
                if q.rel(side).name() == PRIMARY_RELATION {
                    self.materialize_pending_for(pat);
                }
            }
        }

        *self.last_join_report.lock() = Some(JoinReport {
            build_is_left,
            left_strategy: lplan.strategy,
            right_strategy: rplan.strategy,
            left_layouts: lplan.layouts.clone(),
            right_layouts: rplan.layouts.clone(),
            estimated_cost: cost,
            left_selectivity_estimate: lsel,
            right_selectivity_estimate: rsel,
            exec,
        });
        Ok((db, result))
    }

    /// The abstract group specs a plan's layouts read on `catalog`.
    fn plan_groups(
        catalog: &LayoutCatalog,
        plan: &AccessPlan,
    ) -> Result<Vec<GroupSpec>, EngineError> {
        plan.layouts
            .iter()
            .map(|&id| {
                catalog
                    .group(id)
                    .map(|g| GroupSpec::new(g.attr_set().clone()))
                    .map_err(EngineError::from)
            })
            .collect()
    }

    /// Rejects a join whose relation binding was typed against a schema
    /// other than the engine's — binding is by name, and a stale or
    /// foreign schema would make attribute ids (and dictionary codes)
    /// silently mean the wrong thing.
    fn check_schema_binding(
        q: &JoinQuery,
        side: Side,
        actual: &Arc<Schema>,
    ) -> Result<(), EngineError> {
        let bound = q.rel(side).schema();
        let same = Arc::ptr_eq(bound, actual)
            || (bound.len() == actual.len()
                && (0..bound.len()).all(|i| {
                    bound.attr(AttrId::from(i)).ok() == actual.attr(AttrId::from(i)).ok()
                }));
        if same {
            Ok(())
        } else {
            Err(EngineError::Query(QueryError::TypeMismatch(format!(
                "join query was typed against a different schema for relation {}",
                q.rel(side).name()
            ))))
        }
    }

    fn estimate_join_selectivity(&self, q: &JoinQuery, side: Side) -> f64 {
        if q.filter(side).is_always_true() {
            return 1.0;
        }
        self.sel_history
            .lock()
            .get(&Self::join_side_signature(q, side))
            .copied()
            .unwrap_or(self.config.default_selectivity)
    }

    /// Signature of one join side's residual filter mixed with its
    /// relation name — the selectivity-history key. The name is part of
    /// the key because the same filter shape can be arbitrarily more or
    /// less selective on a different relation's data.
    fn join_side_signature(q: &JoinQuery, side: Side) -> u64 {
        let mut h = DefaultHasher::new();
        q.rel(side).name().hash(&mut h);
        for p in q.filter(side).predicates() {
            p.hash(&mut h);
        }
        h.finish()
    }

    /// The shared execution entry: arms the implicit config deadline when
    /// the caller brought no token, isolates panics, and keeps the failure
    /// counters.
    fn execute_snapshot_inner(
        &self,
        q: &Query,
        opts: &ExecOptions,
    ) -> Result<(CatalogSnapshot, QueryResult), EngineError> {
        let token = self.resolve_token(opts);
        // Panic isolation: a kernel or reorganization panic is caught here
        // — below any engine lock acquisition (the vendored `parking_lot`
        // recovers poisoned state anyway) and above the caller — and
        // surfaced as a typed error. Copy-on-write discipline means an
        // unwound mutation left no trace: the catalog swap happens only
        // after a build fully succeeds.
        let out = match catch_unwind(AssertUnwindSafe(|| {
            self.execute_attempt(q, opts.selectivity_hint, token.as_ref())
        })) {
            Ok(r) => r,
            Err(payload) => Err(EngineError::ExecutionPanicked {
                payload: panic_message(payload.as_ref()),
            }),
        };
        if let Err(e) = &out {
            self.count_failure(e);
        }
        out
    }

    fn execute_attempt(
        &self,
        q: &Query,
        selectivity_hint: Option<f64>,
        cancel: Option<&CancelToken>,
    ) -> Result<(CatalogSnapshot, QueryResult), EngineError> {
        // Plan-time type gate: an ill-typed query (cross-type predicate or
        // arithmetic, ordered dict comparison, dict measure) is rejected
        // here, before planning, monitoring or adaptation observe it. The
        // typing is threaded into operator-cache lookups so validation
        // runs once per query, not once per layer.
        let checked = h2o_expr::typecheck::check(q, self.catalog.read().schema())?;

        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.lock().queries += 1;
        let sel = self.estimate_selectivity(q, selectivity_hint);
        let pattern = AccessPattern::of(q, sel);

        let (snap, result) = match self.try_pending(q, &pattern, epoch, cancel) {
            Some(r) => r?,
            None => {
                let snap = self.snapshot();
                let (plan, cost) = self.plan_on(&snap, &pattern)?;
                let op = self
                    .opcache
                    .get_or_compile_checked(&snap, &plan, q, &checked)?;
                for &id in &plan.layouts {
                    snap.note_use(id, epoch);
                }
                *self.last_report.lock() = Some(QueryReport {
                    strategy: plan.strategy,
                    layouts: plan.layouts.clone(),
                    created_layout: None,
                    estimated_cost: cost,
                    selectivity_estimate: sel,
                });
                let (r, exec_stats) = match cancel {
                    Some(token) => exec_execute_with_policy_cancel(
                        &snap,
                        &op,
                        &self.config.exec_policy(),
                        token,
                    )?,
                    None => exec_execute_with_policy_stats(&snap, &op, &self.config.exec_policy())?,
                };
                if exec_stats.segments_skipped > 0 {
                    self.stats.lock().segments_skipped += exec_stats.segments_skipped;
                }
                (snap, r)
            }
        };

        // Selectivity feedback (projection queries expose the match count;
        // grouped queries do not — their row count is the distinct-key
        // count, not the qualifying-tuple count).
        if !q.is_aggregate() && !q.is_grouped() && snap.rows() > 0 && !q.filter().is_always_true() {
            let observed = result.rows() as f64 / snap.rows() as f64;
            let sig = Self::filter_signature(q);
            let mut hist = self.sel_history.lock();
            let entry = hist.entry(sig).or_insert(observed);
            *entry = 0.5 * *entry + 0.5 * observed;
        }

        // Monitoring + periodic adaptation. In background mode the query
        // path only flags that an adaptation round is due; `maintain()`
        // (the reorganizer thread) runs it off the hot path.
        let adapt_now = self.window.observe(pattern);
        if adapt_now && self.config.adaptive {
            if self.config.background_reorg {
                self.adapt_due.store(true, Ordering::Release);
            } else if !self.adapt_running.swap(true, Ordering::AcqRel) {
                // One thread runs the due round; concurrent queries whose
                // observe() also reported the (same) completed interval
                // skip it instead of piling on redundant adviser runs.
                self.adapt();
                self.adapt_running.store(false, Ordering::Release);
            }
        }
        Ok((snap, result))
    }

    /// Picks the cheapest `(covering layouts, strategy)` plan for a
    /// pattern against the current snapshot: the query-processor half of
    /// Fig. 3. Exposed for tests and the harness (`EXPLAIN`-style
    /// introspection).
    pub fn plan(&self, pattern: &AccessPattern) -> Result<(AccessPlan, f64), EngineError> {
        self.plan_on(&self.snapshot(), pattern)
    }

    /// [`Self::plan`] against an explicit snapshot (so one query plans,
    /// compiles and executes against a single catalog version).
    fn plan_on(
        &self,
        catalog: &LayoutCatalog,
        pattern: &AccessPattern,
    ) -> Result<(AccessPlan, f64), EngineError> {
        let needed = pattern.all_attrs();
        let mut plans: Vec<AccessPlan> = Vec::new();
        for cover in catalog.cover_alternatives(&needed)? {
            let ids: Vec<LayoutId> = cover.iter().map(|(id, _)| *id).collect();
            for strategy in Strategy::ALL {
                plans.push(AccessPlan::new(ids.clone(), strategy));
            }
        }
        if let Some(sup) = catalog.find_superset(&needed) {
            for strategy in [Strategy::FusedVolcano, Strategy::SelVector] {
                plans.push(AccessPlan::new(vec![sup], strategy));
            }
        }
        plans.dedup();

        let mut best: Option<(AccessPlan, f64)> = None;
        for plan in plans {
            let groups: Vec<GroupSpec> = plan
                .layouts
                .iter()
                .map(|&id| {
                    catalog
                        .group(id)
                        .map(|g| GroupSpec::new(g.attr_set().clone()))
                })
                .collect::<Result<_, _>>()?;
            let cost = self.model.plan_cost(
                pattern,
                &PlanSpec {
                    strategy: plan.strategy,
                    groups,
                    residence: Residence::Memory,
                },
                catalog.rows(),
            );
            if best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((plan, cost));
            }
        }
        best.ok_or_else(|| {
            EngineError::Storage(StorageError::NoCover(needed.first().unwrap_or(AttrId(0))))
        })
    }

    /// Lazy materialization: if a pending layout covers this query and the
    /// cost model says the query benefits, materialize it *while answering
    /// the query* through the fused reorganization operator. Runs behind
    /// the writer lock; if another writer holds it, the lazy path is
    /// skipped for this query (readers must never block on reorganization).
    #[allow(clippy::type_complexity)]
    fn try_pending(
        &self,
        q: &Query,
        pattern: &AccessPattern,
        epoch: Epoch,
        cancel: Option<&CancelToken>,
    ) -> Option<Result<(CatalogSnapshot, QueryResult), EngineError>> {
        if !self.config.adaptive || self.config.background_reorg || self.pending.is_empty() {
            return None;
        }
        // Cheap lock-free screen: only queries that intersect some pending
        // spec may take the writer lock and pay for planning — unrelated
        // queries must never serialize against writers.
        let needed = pattern.all_attrs();
        if !self
            .pending
            .get()
            .iter()
            .any(|g| needed.intersects(&g.attrs))
        {
            return None;
        }
        let _w = self.writer.try_lock()?;
        // Under the writer lock the published catalog cannot change: this
        // snapshot is the authoritative current version.
        let snap = self.snapshot();
        let current_cost = match self.plan_on(&snap, pattern) {
            Ok((_, c)) => c,
            Err(e) => return Some(Err(e)),
        };

        // Find the pending layout whose materialization most improves this
        // query: hypothetically add it to the configuration, cover any
        // remaining attributes from the existing layouts, and compare the
        // best achievable cost against the current best plan. (The
        // window-level amortization was already established by the
        // adviser; this is the per-query "can benefit" check of §3.2.)
        let pending = self.pending.get();
        let mut best: Option<(usize, f64)> = None;
        for (i, g) in pending.iter().enumerate() {
            if !needed.intersects(&g.attrs) || snap.find_exact(&g.attrs).is_some() {
                continue;
            }
            let remaining = needed.difference(&g.attrs);
            let mut groups = vec![g.clone()];
            if !remaining.is_empty() {
                let cover = match snap.cover(
                    &remaining,
                    h2o_storage::catalog::CoverPolicy::LeastExcessWidth,
                ) {
                    Ok(c) => c,
                    Err(_) => continue, // uncoverable remainder: not a candidate
                };
                for (id, _) in cover {
                    let Ok(src) = snap.group(id) else { continue };
                    groups.push(GroupSpec::new(src.attr_set().clone()));
                }
            }
            let cost = self.model.best_cost(pattern, &groups, snap.rows());
            if cost < current_cost && best.is_none_or(|(_, c)| cost < c) {
                best = Some((i, cost));
            }
        }
        let (idx, new_cost) = best?;
        let g = pending[idx].clone();

        // Build the successor catalog: evict under the space budget, stitch
        // the new group, admit it — then publish the whole thing in one
        // atomic swap. Readers see either the old or the new version.
        let mut new_cat = (*snap).clone();
        let evicted = self.evict_for(&mut new_cat, g.attrs.len())?;

        // Generate the fused reorganization operator (charged like any
        // other generated operator) and run it.
        let attrs: Vec<AttrId> = g.attrs.to_vec();
        let charge = self
            .opcache
            .cost_model()
            .cost(attrs.len() + q.select_node_count());
        self.opcache.cost_model().charge(charge);

        let t0 = Instant::now();
        let out = reorg::reorg_and_execute_cancellable(
            &new_cat,
            &attrs,
            q,
            &self.config.exec_policy(),
            cancel,
        );
        let (group, result) = match out {
            Ok(v) => v,
            // Includes cooperative stops: a cancelled fused reorganization
            // abandons `new_cat` (copy-on-write — never published) and the
            // advice stays pending for a later query.
            Err(e) => return Some(Err(e.into())),
        };
        let id = match new_cat.add_group(group, epoch) {
            Ok(id) => id,
            Err(e) => return Some(Err(e.into())),
        };
        self.commit_reorg(&evicted, t0);
        // Publish before retiring the advice: adapt()'s race-closing prune
        // snapshots the catalog after its replace, so as long as every
        // materialization publishes first, a concurrently re-recommended
        // spec can never survive as pending for an existing layout.
        let published = self.publish(new_cat);
        self.pending.remove(&g);
        *self.last_report.lock() = Some(QueryReport {
            strategy: Strategy::FusedVolcano,
            layouts: vec![id],
            created_layout: Some(id),
            estimated_cost: new_cost,
            selectivity_estimate: pattern.selectivity,
        });
        Some(Ok((published, result)))
    }

    /// One adaptation round: feed the monitoring window to the adviser and
    /// refresh the pending-layout list. Touches only advice state — never
    /// the catalog — so it is safe from any thread.
    fn adapt(&self) {
        self.stats.lock().adaptations += 1;
        let snap = self.snapshot();
        let current: Vec<GroupSpec> = snap
            .groups()
            .map(|g| GroupSpec::new(g.attr_set().clone()))
            .collect();
        let t0 = Instant::now();
        let rec = self
            .adviser
            .recommend(&self.window.snapshot(), &current, snap.rows());
        let elapsed = t0.elapsed();
        {
            let mut s = self.stats.lock();
            s.advise_time += elapsed;
            if !rec.groups.is_empty() {
                s.recommendations += 1;
            }
        }
        if !rec.groups.is_empty() {
            self.pending.replace(rec.groups);
            // The recommendation was computed from a possibly stale
            // snapshot: a layout materialized concurrently (e.g. by
            // `materialize_now`, whose own retain may have run before our
            // replace) must not be re-advertised. Pruning against a
            // post-replace snapshot closes the race for every
            // interleaving, because `materialize_now` publishes before it
            // retains.
            let now = self.snapshot();
            self.pending.retain(|g| now.find_exact(&g.attrs).is_none());
        }
        self.window.adaptation_done();
    }

    /// One background-maintenance pump: runs a due adaptation round, then
    /// builds every still-beneficial pending layout offline (parallel
    /// stitch from a snapshot) and publishes each atomically. In-flight
    /// queries keep their snapshots and never block. Call it from a loop on
    /// a dedicated thread ([`Self::spawn_reorganizer`] does exactly that)
    /// or pump it explicitly between batches.
    pub fn maintain(&self) -> MaintenanceReport {
        let mut report = MaintenanceReport::default();
        if !self.config.adaptive {
            return report;
        }
        if self.adapt_due.swap(false, Ordering::AcqRel) {
            self.adapt();
            report.adapted = true;
        }
        if !self.config.background_reorg {
            // Lazy mode materializes on the query path; maintain() only
            // prunes advice that already materialized (e.g. via
            // `materialize_now`) so `pending()` stays consistent.
            let snap = self.snapshot();
            self.pending.retain(|g| snap.find_exact(&g.attrs).is_none());
            return report;
        }
        // Peek-build-remove (not pop-build): the spec is retired from the
        // advice queue only after its build round *returned*. If a build
        // panics mid-round, the unwind skips the `remove` and the spec is
        // still pending when the supervised reorganizer restarts the pump,
        // so recovery completes the interrupted round instead of silently
        // dropping the recommendation.
        while let Some(spec) = self.pending.get().into_iter().next() {
            if self.build_pending_group(&spec) {
                report.layouts_built += 1;
            }
            // A concurrent `replace` may have retired the spec already;
            // removal is by value and simply no-ops then.
            self.pending.remove(&spec);
        }
        report
    }

    /// Builds one recommended group and publishes it. The expensive stitch
    /// runs *without* the writer lock (from a pinned snapshot), so
    /// concurrent appends proceed during the build; the lock is taken only
    /// to admit and publish. If appends landed mid-build (the row count
    /// moved), the build retries from a fresh snapshot; the final attempt
    /// builds under the lock so it cannot be outrun forever. All side
    /// effects (opcache invalidation, stats) happen only when a new
    /// catalog version is actually published.
    fn build_pending_group(&self, spec: &GroupSpec) -> bool {
        let attrs: Vec<AttrId> = spec.attrs.to_vec();
        const ATTEMPTS: usize = 3;
        for attempt in 0..ATTEMPTS {
            let locked_build = attempt == ATTEMPTS - 1;
            let base = self.snapshot();
            if base.find_exact(&spec.attrs).is_some() {
                return false; // already materialized (e.g. materialize_now)
            }
            // Feasibility before cost: simulate the budget eviction on a
            // cheap table-only clone so an unfittable spec is skipped
            // *before* paying for a full-table stitch (a tight budget plus
            // a stable workload would otherwise re-stitch and discard the
            // same group every adaptation round).
            if self.config.space_budget_bytes.is_some() {
                let mut scratch = (*base).clone();
                if self.evict_for(&mut scratch, attrs.len()).is_none() {
                    return false;
                }
            }
            let t0 = Instant::now();
            let built = if locked_build {
                None
            } else {
                match reorg::materialize_with(&base, &attrs, &self.config.exec_policy()) {
                    Ok(g) => Some(g),
                    Err(_) => return false, // spec no longer coverable
                }
            };
            let _w = self.writer.lock();
            let latest = self.snapshot();
            if latest.find_exact(&spec.attrs).is_some() {
                return false;
            }
            let group = match built {
                Some(g) if g.rows() == latest.rows() => g,
                Some(_) => continue, // appends landed mid-build: rebuild
                _ => match reorg::materialize_with(&latest, &attrs, &self.config.exec_policy()) {
                    Ok(g) => g,
                    Err(_) => return false,
                },
            };
            let mut new_cat = (*latest).clone();
            let Some(evicted) = self.evict_for(&mut new_cat, attrs.len()) else {
                return false; // cannot fit: skip the spec, no side effects
            };
            let epoch = self.epoch.load(Ordering::Relaxed);
            if new_cat.add_group(group, epoch).is_err() {
                return false;
            }
            self.commit_reorg(&evicted, t0);
            self.publish(new_cat);
            return true;
        }
        false
    }

    /// Materializes the pending group that most improves `pattern`'s best
    /// plan on the primary, if any does — the join path's analogue of
    /// [`Self::try_pending`]'s per-query "can benefit" check (§3.2), run
    /// after answering instead of fused into the answer.
    fn materialize_pending_for(&self, pattern: &AccessPattern) {
        if self.pending.is_empty() {
            return;
        }
        let needed = pattern.all_attrs();
        let snap = self.snapshot();
        let Ok((_, current_cost)) = self.plan_on(&snap, pattern) else {
            return;
        };
        let mut best: Option<(GroupSpec, f64)> = None;
        for g in self.pending.get() {
            if !needed.intersects(&g.attrs) || snap.find_exact(&g.attrs).is_some() {
                continue;
            }
            // Hypothetically add the pending group, cover the remainder
            // from existing layouts, and compare against the current best.
            let remaining = needed.difference(&g.attrs);
            let mut groups = vec![g.clone()];
            if !remaining.is_empty() {
                let Ok(cover) = snap.cover(
                    &remaining,
                    h2o_storage::catalog::CoverPolicy::LeastExcessWidth,
                ) else {
                    continue; // uncoverable remainder: not a candidate
                };
                for (id, _) in cover {
                    let Ok(src) = snap.group(id) else { continue };
                    groups.push(GroupSpec::new(src.attr_set().clone()));
                }
            }
            let cost = self.model.best_cost(pattern, &groups, snap.rows());
            if cost < current_cost && best.as_ref().is_none_or(|(_, c)| cost < *c) {
                best = Some((g, cost));
            }
        }
        let Some((g, _)) = best else { return };
        self.build_pending_group(&g);
        self.pending.remove(&g);
    }

    /// Evicts least-recently-used redundant layouts from `new_cat` until a
    /// new `new_width`-attribute group fits the space budget. Returns the
    /// victims (side effects deferred to [`Self::commit_reorg`], so an
    /// abandoned copy-on-write attempt leaves no trace) or `None` when the
    /// group cannot be made to fit.
    fn evict_for(&self, new_cat: &mut LayoutCatalog, new_width: usize) -> Option<Vec<LayoutId>> {
        let mut evicted = Vec::new();
        if let Some(budget) = self.config.space_budget_bytes {
            let new_bytes = new_width * h2o_storage::VALUE_BYTES * new_cat.rows();
            while new_cat.total_bytes() + new_bytes > budget {
                let victim = new_cat.eviction_candidate()?;
                if new_cat.drop_group(victim).is_err() {
                    return None;
                }
                evicted.push(victim);
            }
        }
        Some(evicted)
    }

    /// Applies the side effects of a completed reorganization whose new
    /// catalog version is about to be (or was just) published: invalidates
    /// cached operators over evicted layouts and updates the counters.
    fn commit_reorg(&self, evicted: &[LayoutId], started: Instant) {
        for &victim in evicted {
            self.opcache.invalidate_layout(victim);
        }
        let mut s = self.stats.lock();
        s.layouts_evicted += evicted.len() as u64;
        s.reorg_time += started.elapsed();
        s.layouts_created += 1;
        s.reorgs_completed += 1;
    }

    /// Spawns a **supervised** reorganizer thread that pumps
    /// [`Self::maintain`] every `poll` until the returned handle is
    /// dropped or [`ReorganizerHandle::stop`] is called.
    ///
    /// Each maintenance round runs under `catch_unwind`: a panicking round
    /// never kills the thread. The supervisor counts the panic
    /// ([`EngineStats::reorg_panics`]), sleeps an exponentially growing
    /// backoff (base [`REORG_BACKOFF_BASE`], doubled per consecutive
    /// panic, capped at [`REORG_BACKOFF_CAP`], plus deterministic jitter),
    /// then resumes pumping ([`EngineStats::reorg_restarts`]). A round
    /// that completes resets the backoff. Because `maintain` retires
    /// advice only *after* a build round returns, the recovery round picks
    /// the interrupted spec back up.
    ///
    /// Thread creation itself can fail (OS resource exhaustion); that is
    /// surfaced as recoverable [`EngineError::Spawn`] — degrade to pumping
    /// [`Self::maintain`] inline.
    pub fn spawn_reorganizer(
        self: &Arc<Self>,
        poll: Duration,
    ) -> Result<ReorganizerHandle, EngineError> {
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(SupervisorState::default());
        let engine = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let sup = Arc::clone(&state);
        // Deterministic per-engine jitter stream: decorrelates multiple
        // engines' retry storms without consulting a clock.
        let mut rng = SmallRng::seed_from_u64(Arc::as_ptr(self) as u64);
        let thread = std::thread::Builder::new()
            .name("h2o-reorganizer".into())
            .spawn(move || {
                let mut backoff = REORG_BACKOFF_BASE;
                while !flag.load(Ordering::Acquire) {
                    match catch_unwind(AssertUnwindSafe(|| engine.maintain())) {
                        Ok(_) => {
                            sup.rounds.fetch_add(1, Ordering::Relaxed);
                            backoff = REORG_BACKOFF_BASE;
                            std::thread::park_timeout(poll);
                        }
                        Err(_) => {
                            sup.panics.fetch_add(1, Ordering::Relaxed);
                            engine.stats.lock().reorg_panics += 1;
                            let jitter_us =
                                rng.gen_range(0..=(backoff.as_micros() as u64 / 4).max(1));
                            let sleep = backoff + Duration::from_micros(jitter_us);
                            sup.last_backoff_us
                                .store(sleep.as_micros() as u64, Ordering::Relaxed);
                            // park_timeout, not sleep: stop() can interrupt
                            // even a capped backoff promptly.
                            std::thread::park_timeout(sleep);
                            backoff = (backoff * 2).min(REORG_BACKOFF_CAP);
                            if flag.load(Ordering::Acquire) {
                                break;
                            }
                            sup.restarts.fetch_add(1, Ordering::Relaxed);
                            engine.stats.lock().reorg_restarts += 1;
                        }
                    }
                }
                // Final pump so advice queued right before stop still
                // lands; a panic here is counted but not retried.
                if catch_unwind(AssertUnwindSafe(|| engine.maintain())).is_err() {
                    sup.panics.fetch_add(1, Ordering::Relaxed);
                    engine.stats.lock().reorg_panics += 1;
                }
            })
            .map_err(|e| EngineError::Spawn(e.to_string()))?;
        Ok(ReorganizerHandle {
            stop,
            thread: Some(thread),
            state,
        })
    }

    /// Materializes a layout *offline* (separate pass, no query). Used by
    /// the Fig. 13 comparison and by explicit administration.
    pub fn materialize_now(&self, attrs: &[AttrId]) -> Result<LayoutId, EngineError> {
        let _w = self.writer.lock();
        let snap = self.snapshot();
        let t0 = Instant::now();
        let group = reorg::materialize_with(&snap, attrs, &self.config.exec_policy())?;
        let mut new_cat = (*snap).clone();
        let id = new_cat.add_group(group, self.epoch.load(Ordering::Relaxed))?;
        self.commit_reorg(&[], t0);
        self.publish(new_cat);
        // The spec is no longer pending advice: it exists. Pruning *after*
        // the publish pairs with adapt()'s replace-then-prune ordering so
        // the two cannot interleave into re-advertising an existing layout.
        let spec_attrs: h2o_storage::AttrSet = attrs.iter().copied().collect();
        self.pending.retain(|g| g.attrs != spec_attrs);
        Ok(id)
    }

    /// Drops a layout (refusing to uncover attributes) and invalidates
    /// dependent cached operators. Pending advice is untouched: a spec
    /// whose layout is dropped simply becomes materializable again.
    pub fn drop_layout(&self, id: LayoutId) -> Result<(), EngineError> {
        let _w = self.writer.lock();
        let snap = self.snapshot();
        let mut new_cat = (*snap).clone();
        new_cat.drop_group(id)?;
        self.publish(new_cat);
        self.opcache.invalidate_layout(id);
        Ok(())
    }

    /// Appends tuples (full schema order) to the relation. Every
    /// coexisting layout receives the rows, so all plans keep working; the
    /// write cost scales with the number of live layouts — the multi-format
    /// trade-off the paper acknowledges ("updates might become quite
    /// expensive" for redundant layouts). The whole batch becomes visible
    /// in one atomic snapshot publish; readers never see a torn batch.
    /// An empty batch is a no-op: nothing is cloned and no snapshot is
    /// published.
    ///
    /// Cost note: group payloads are segmented
    /// ([`h2o_storage::ColumnGroup`]), so snapshot isolation's
    /// copy-on-write clones at most each group's *tail segment* (≤ 64K
    /// rows) on the first appended row of a batch — old snapshots keep the
    /// originals, sealed segments are shared untouched. A batch therefore
    /// costs O(batch × live layouts + one tail segment per layout),
    /// independent of relation size (`EngineStats::bytes_cloned_on_write`
    /// measures exactly this). Batching still amortizes the per-publish
    /// tail clone across more rows.
    pub fn insert(&self, tuples: &[Vec<h2o_storage::Value>]) -> Result<(), EngineError> {
        if tuples.is_empty() {
            return Ok(());
        }
        // The mutation section is panic-isolated like the query path: an
        // unwound append abandons the copy-on-write clone before the
        // publish swap, so readers keep the old version and the engine
        // stays consistent and usable.
        let out = catch_unwind(AssertUnwindSafe(|| {
            let _w = self.writer.lock();
            let snap = self.snapshot();
            let mut new_cat = (*snap).clone();
            let delta = new_cat.append_rows(tuples)?;
            {
                let mut s = self.stats.lock();
                s.rows_appended += tuples.len() as u64;
                s.bytes_cloned_on_write += delta.bytes_cloned;
                s.segments_sealed += delta.segments_sealed;
            }
            self.publish(new_cat);
            Ok(())
        }));
        match out {
            Ok(r) => r,
            Err(payload) => {
                self.stats.lock().queries_panicked += 1;
                Err(EngineError::ExecutionPanicked {
                    payload: panic_message(payload.as_ref()),
                })
            }
        }
    }

    /// A human-readable description of the plan the engine would choose
    /// for `q` right now (an `EXPLAIN`): chosen layouts, strategy, cost
    /// estimate, and whether a pending layout would be materialized first.
    pub fn explain(&self, q: &Query) -> Result<String, EngineError> {
        use std::fmt::Write;
        let snap = self.snapshot();
        let sel = self.estimate_selectivity(q, None);
        let pattern = AccessPattern::of(q, sel);
        let (plan, cost) = self.plan_on(&snap, &pattern)?;
        let mut out = String::new();
        writeln!(out, "query: {q}").unwrap();
        writeln!(
            out,
            "estimated selectivity: {sel:.4} ({})",
            if q.filter().is_always_true() {
                "no filter"
            } else {
                "from history/default"
            }
        )
        .unwrap();
        let needed = pattern.all_attrs();
        let pending_hit = self
            .pending
            .get()
            .iter()
            .any(|g| needed.intersects(&g.attrs) && snap.find_exact(&g.attrs).is_none());
        if self.config.adaptive && pending_hit {
            writeln!(
                out,
                "pending layout available: may materialize while answering"
            )
            .unwrap();
        }
        writeln!(out, "strategy: {}", plan.strategy.name()).unwrap();
        writeln!(out, "estimated cost: {cost:.6}").unwrap();
        for &id in &plan.layouts {
            let g = snap.group(id)?;
            let attrs: Vec<String> = g.attrs().iter().map(|a| a.to_string()).collect();
            writeln!(
                out,
                "  scan {id} width={} rows={} attrs=[{}]",
                g.width(),
                g.rows(),
                attrs.join(",")
            )
            .unwrap();
        }
        Ok(out)
    }

    fn estimate_selectivity(&self, q: &Query, hint: Option<f64>) -> f64 {
        if q.filter().is_always_true() {
            return 1.0;
        }
        if let Some(h) = hint {
            return h.clamp(0.0, 1.0);
        }
        let sig = Self::filter_signature(q);
        self.sel_history
            .lock()
            .get(&sig)
            .copied()
            .unwrap_or(self.config.default_selectivity)
    }

    /// Signature of a filter (attributes, operators and constants): the key
    /// for observed-selectivity history.
    fn filter_signature(q: &Query) -> u64 {
        let mut h = DefaultHasher::new();
        for p in q.filter().predicates() {
            p.hash(&mut h);
        }
        h.finish()
    }
}

/// Base backoff after a panicking maintenance round; doubled per
/// consecutive panic.
pub const REORG_BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Backoff ceiling — a persistently faulty round retries at this cadence
/// forever rather than spinning or giving up.
pub const REORG_BACKOFF_CAP: Duration = Duration::from_secs(1);
/// Longest a shutdown waits for the reorganizer thread to finish its
/// current round before detaching it.
const REORG_JOIN_WAIT: Duration = Duration::from_secs(10);

/// Shared health counters of one supervised reorganizer thread.
#[derive(Debug, Default)]
struct SupervisorState {
    rounds: AtomicU64,
    panics: AtomicU64,
    restarts: AtomicU64,
    last_backoff_us: AtomicU64,
}

/// Point-in-time health of a supervised reorganizer thread
/// ([`ReorganizerHandle::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorganizerStatus {
    /// Maintenance rounds completed without panicking.
    pub rounds: u64,
    /// Maintenance rounds that panicked (each was caught).
    pub panics: u64,
    /// Times the supervisor resumed pumping after a panic + backoff.
    pub restarts: u64,
    /// The most recent backoff slept after a panic (zero if none yet).
    pub last_backoff: Duration,
    /// Whether the supervised thread is still running.
    pub alive: bool,
}

/// Guard for a running background reorganizer thread. Dropping it (or
/// calling [`Self::stop`]) stops the thread after one final `maintain()`
/// pump and joins it with a bounded wait. Stopping is idempotent: `stop`
/// after `stop`, or a drop after `stop`, is a no-op.
pub struct ReorganizerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    state: Arc<SupervisorState>,
}

impl ReorganizerHandle {
    /// Stops and joins the reorganizer thread (bounded wait; see
    /// [`ReorganizerHandle`]). Safe to call more than once.
    pub fn stop(&mut self) {
        self.shutdown();
    }

    /// Asks the reorganizer to pump `maintain()` soon (without waiting for
    /// the poll interval or a pending backoff).
    pub fn nudge(&self) {
        if let Some(t) = &self.thread {
            t.thread().unpark();
        }
    }

    /// Health of the supervised thread: completed rounds, caught panics,
    /// restarts, and the most recent backoff.
    pub fn status(&self) -> ReorganizerStatus {
        ReorganizerStatus {
            rounds: self.state.rounds.load(Ordering::Relaxed),
            panics: self.state.panics.load(Ordering::Relaxed),
            restarts: self.state.restarts.load(Ordering::Relaxed),
            last_backoff: Duration::from_micros(self.state.last_backoff_us.load(Ordering::Relaxed)),
            alive: self.thread.as_ref().is_some_and(|t| !t.is_finished()),
        }
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        let Some(t) = self.thread.take() else {
            return; // already stopped: idempotent
        };
        t.thread().unpark();
        // Bounded join: wait for the final pump, but never hang shutdown
        // on a wedged round — detach instead (the thread holds only an
        // `Arc` of the engine and exits on its next stop-flag check).
        let waited = Instant::now();
        while !t.is_finished() && waited.elapsed() < REORG_JOIN_WAIT {
            t.thread().unpark();
            std::thread::sleep(Duration::from_millis(1));
        }
        if t.is_finished() {
            let _ = t.join();
        }
    }
}

impl Drop for ReorganizerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_expr::{interpret, Aggregate, Conjunction, Expr, Predicate};
    use h2o_storage::{Schema, Value};

    fn columns(n_attrs: usize, rows: usize) -> Vec<Vec<Value>> {
        (0..n_attrs)
            .map(|k| {
                (0..rows)
                    .map(|r| (((k * 131 + r * 31) % 2001) as Value) - 1000)
                    .collect()
            })
            .collect()
    }

    fn engine(n_attrs: usize, rows: usize, config: EngineConfig) -> H2oEngine {
        let schema = Schema::with_width(n_attrs).into_shared();
        let rel = Relation::columnar(schema, columns(n_attrs, rows)).unwrap();
        H2oEngine::new(rel, config)
    }

    fn expr_query(select: &[u32], where_attr: u32, bound: Value) -> Query {
        Query::project(
            [Expr::sum_of(select.iter().map(|&i| AttrId(i)))],
            Conjunction::of([Predicate::lt(where_attr, bound)]),
        )
        .unwrap()
    }

    #[test]
    fn engine_answers_match_interpreter() {
        let e = engine(8, 500, EngineConfig::no_compile_latency());
        let queries = [
            expr_query(&[0, 1, 2], 3, 100),
            Query::aggregate(
                [Aggregate::max(Expr::col(4u32)), Aggregate::count()],
                Conjunction::of([Predicate::gt(5u32, -500)]),
            )
            .unwrap(),
            Query::project([Expr::col(7u32)], Conjunction::always()).unwrap(),
        ];
        for q in &queries {
            let want = interpret(&e.catalog(), q).unwrap();
            let got = e.run(Request::query(q)).unwrap().result;
            assert_eq!(got.fingerprint(), want.fingerprint(), "{q}");
        }
        assert_eq!(e.stats().queries, 3);
    }

    #[test]
    fn repeated_hot_queries_trigger_adaptation_and_lazy_creation() {
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 10;
        cfg.window.min = 4;
        let e = engine(30, 4000, cfg);
        // 40 near-identical queries over {0..4} with filter on 5.
        for i in 0..40 {
            let q = expr_query(&[0, 1, 2, 3, 4], 5, (i % 7) * 100 - 300);
            let want = interpret(&e.catalog(), &q).unwrap();
            let got = e.run(Request::query(&q)).unwrap().result;
            assert_eq!(got.fingerprint(), want.fingerprint(), "query {i}");
        }
        let stats = e.stats();
        assert!(
            stats.adaptations >= 1,
            "window must have triggered adaptation"
        );
        assert!(
            stats.layouts_created >= 1,
            "hot cluster must have produced a materialized group; stats: {stats:?}"
        );
        assert!(stats.reorgs_completed >= 1);
        assert!(stats.snapshots_published >= 1);
        // The created layout must cover the hot select cluster (the
        // where-clause attribute keeps its own layout — the paper's
        // two-group design of Fig. 6).
        let hot: h2o_storage::AttrSet = [0usize, 1, 2, 3, 4].into_iter().collect();
        assert!(
            e.catalog().find_superset(&hot).is_some(),
            "expected a group covering the hot select cluster"
        );
        // And later queries should be using it.
        let report = e.last_report().unwrap();
        let used = &report.layouts;
        let wide_used = used
            .iter()
            .any(|&id| e.catalog().group(id).unwrap().width() > 1);
        assert!(
            wide_used,
            "later queries should run on the new group: {report:?}"
        );
    }

    /// A grouped query over a low-cardinality key column (values folded
    /// into `card` buckets via the data, not the query).
    fn grouped_engine(card: i64, n_attrs: usize, rows: usize, config: EngineConfig) -> H2oEngine {
        let schema = Schema::with_width(n_attrs).into_shared();
        let mut cols = columns(n_attrs, rows);
        for v in &mut cols[0] {
            *v = v.rem_euclid(card);
        }
        let rel = Relation::columnar(schema, cols).unwrap();
        H2oEngine::new(rel, config)
    }

    #[test]
    fn grouped_queries_match_interpreter_and_drive_adaptation() {
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 8;
        cfg.window.min = 4;
        let e = grouped_engine(16, 20, 3000, cfg);
        // A hot grouped workload: group by a0, aggregate over {1,2,3},
        // filter on 4. Key + aggregate inputs form the hot select cluster.
        for i in 0..40 {
            let q = Query::grouped(
                [Expr::col(0u32)],
                [
                    Aggregate::sum(Expr::sum_of([AttrId(1), AttrId(2)])),
                    Aggregate::max(Expr::col(3u32)),
                    Aggregate::count(),
                ],
                Conjunction::of([Predicate::lt(4u32, (i % 7) * 200 - 600)]),
            )
            .unwrap();
            let want = interpret(&e.catalog(), &q).unwrap();
            let got = e.run(Request::query(&q)).unwrap().result;
            assert_eq!(got, want, "grouped query {i} (bit-identical, sorted)");
        }
        let stats = e.stats();
        assert!(stats.adaptations >= 1, "window must trigger adaptation");
        assert!(
            stats.layouts_created >= 1,
            "grouped workload must materialize a layout; stats: {stats:?}"
        );
        // The adviser saw the group-key column as hot: some created layout
        // covers the key together with aggregate inputs.
        let hot: h2o_storage::AttrSet = [0usize, 1, 2, 3].into_iter().collect();
        assert!(
            e.catalog().find_superset(&hot).is_some(),
            "expected a group covering key + aggregate inputs"
        );
    }

    #[test]
    fn grouped_selectivity_history_not_polluted() {
        // Grouped row counts are distinct-key counts; they must not feed
        // the selectivity EWMA.
        let e = grouped_engine(4, 6, 1000, EngineConfig::no_compile_latency());
        let q = Query::grouped(
            [Expr::col(0u32)],
            [Aggregate::count()],
            Conjunction::of([Predicate::gt(1u32, i64::MIN)]),
        )
        .unwrap();
        e.run(Request::query(&q)).unwrap();
        assert_eq!(
            e.observed_selectivity(&q),
            None,
            "grouped output cardinality must not be recorded as selectivity"
        );
    }

    #[test]
    fn results_stay_correct_across_reorganization() {
        // Differential-test the engine against the interpreter on every
        // query of a shifting workload (correctness during adaptation is
        // the engine's core invariant).
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 6;
        cfg.window.min = 3;
        let e = engine(20, 1500, cfg);
        let phases: [(&[u32], u32); 2] = [(&[0, 1, 2], 3), (&[10, 11, 12, 13], 14)];
        let mut qid = 0;
        for (select, w) in phases {
            for i in 0..25 {
                let q = expr_query(select, w, (i % 11) * 50 - 250);
                let want = interpret(&e.catalog(), &q).unwrap();
                let got = e.run(Request::query(&q)).unwrap().result;
                assert_eq!(got.fingerprint(), want.fingerprint(), "query {qid}");
                qid += 1;
            }
        }
        assert!(e.stats().queries == 50);
    }

    #[test]
    fn background_mode_defers_reorg_to_maintain() {
        let mut cfg = EngineConfig::background();
        cfg.window.initial = 8;
        cfg.window.min = 4;
        let e = engine(24, 2000, cfg);
        for i in 0..30 {
            let q = expr_query(&[0, 1, 2, 3], 4, (i % 5) * 100 - 200);
            let want = interpret(&e.catalog(), &q).unwrap();
            let got = e.run(Request::query(&q)).unwrap().result;
            assert_eq!(got.fingerprint(), want.fingerprint(), "query {i}");
        }
        assert_eq!(
            e.stats().layouts_created,
            0,
            "background mode must not reorganize on the query path"
        );
        // Pump maintenance until the due adaptation ran and pending drained.
        let mut built = 0;
        for _ in 0..4 {
            built += e.maintain().layouts_built;
        }
        assert!(built >= 1, "maintain() must build the recommended layouts");
        assert!(e.stats().reorgs_completed >= 1);
        // Queries keep matching the oracle and can now use the new group.
        for i in 0..10 {
            let q = expr_query(&[0, 1, 2, 3], 4, (i % 5) * 100 - 200);
            let want = interpret(&e.catalog(), &q).unwrap();
            assert_eq!(
                e.run(Request::query(&q)).unwrap().result.fingerprint(),
                want.fingerprint()
            );
        }
    }

    #[test]
    fn background_reorganizer_thread_builds_layouts() {
        let mut cfg = EngineConfig::background();
        cfg.window.initial = 6;
        cfg.window.min = 4;
        let e = Arc::new(engine(20, 1500, cfg));
        let mut handle = e.spawn_reorganizer(Duration::from_millis(1)).unwrap();
        for i in 0..60 {
            let q = expr_query(&[0, 1, 2], 3, (i % 5) * 100 - 200);
            let want = interpret(&e.catalog(), &q).unwrap();
            assert_eq!(
                e.run(Request::query(&q)).unwrap().result.fingerprint(),
                want.fingerprint()
            );
            handle.nudge();
        }
        handle.stop();
        assert!(
            e.stats().reorgs_completed >= 1,
            "reorganizer thread must have built a layout; stats: {:?}",
            e.stats()
        );
        assert_eq!(e.stats().layouts_created, e.stats().reorgs_completed);
    }

    #[test]
    fn non_adaptive_engine_never_creates_layouts() {
        let mut cfg = EngineConfig::non_adaptive();
        cfg.compile_cost = h2o_exec::CompileCostModel::ZERO;
        cfg.window.initial = 5;
        let e = engine(12, 800, cfg);
        for i in 0..30 {
            let q = expr_query(&[0, 1, 2], 3, i * 10);
            e.run(Request::query(&q)).unwrap();
        }
        assert_eq!(e.stats().layouts_created, 0);
        assert_eq!(e.stats().adaptations, 0);
        assert_eq!(e.catalog().group_count(), 12);
        assert_eq!(e.maintain(), MaintenanceReport::default());
    }

    #[test]
    fn plan_picks_single_group_when_available() {
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 200; // no adaptation interference
        let e = engine(10, 500, cfg);
        let id = e
            .materialize_now(&[AttrId(0), AttrId(1), AttrId(2)])
            .unwrap();
        let q = Query::aggregate(
            [Aggregate::sum(Expr::sum_of([
                AttrId(0),
                AttrId(1),
                AttrId(2),
            ]))],
            Conjunction::always(),
        )
        .unwrap();
        let pattern = AccessPattern::of(&q, 1.0);
        let (plan, _) = e.plan(&pattern).unwrap();
        assert!(
            plan.layouts.contains(&id) || plan.layouts.len() <= 3,
            "planner should consider the tailored group: {plan:?}"
        );
        // Execute and verify.
        let want = interpret(&e.catalog(), &q).unwrap();
        assert_eq!(e.run(Request::query(&q)).unwrap().result, want);
    }

    #[test]
    fn selectivity_feedback_updates_history() {
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 100;
        cfg.default_selectivity = 0.5;
        let e = engine(6, 1000, cfg);
        let q = expr_query(&[0, 1], 2, -900); // very selective
        assert_eq!(e.observed_selectivity(&q), None);
        e.run(Request::query(&q)).unwrap();
        let first_est = e.last_report().unwrap().selectivity_estimate;
        assert!((first_est - 0.5).abs() < 1e-9, "first run uses the default");
        e.run(Request::query(&q)).unwrap();
        let second_est = e.last_report().unwrap().selectivity_estimate;
        assert!(
            second_est < 0.3,
            "second run must use observed selectivity, got {second_est}"
        );
        let hist = e.observed_selectivity(&q).unwrap();
        assert!((0.0..=1.0).contains(&hist));
    }

    #[test]
    fn hint_overrides_history() {
        let e = engine(6, 500, EngineConfig::no_compile_latency());
        let q = expr_query(&[0], 1, 0);
        e.run(Request::query(&q).hint(0.05)).unwrap();
        assert!((e.last_report().unwrap().selectivity_estimate - 0.05).abs() < 1e-9);
    }

    #[test]
    fn materialize_now_and_drop_layout() {
        let e = engine(5, 300, EngineConfig::no_compile_latency());
        let id = e.materialize_now(&[AttrId(1), AttrId(3)]).unwrap();
        assert_eq!(e.catalog().group_count(), 6);
        e.drop_layout(id).unwrap();
        assert_eq!(e.catalog().group_count(), 5);
        // Dropping a base column must fail (would uncover).
        let base = e.catalog().layout_ids()[0];
        assert!(matches!(
            e.drop_layout(base),
            Err(EngineError::Storage(StorageError::WouldUncover(_)))
        ));
    }

    #[test]
    fn inserts_are_visible_in_every_layout() {
        let e = engine(6, 100, EngineConfig::no_compile_latency());
        e.materialize_now(&[AttrId(0), AttrId(1), AttrId(2)])
            .unwrap();
        let q = Query::aggregate(
            [Aggregate::count(), Aggregate::max(Expr::col(1u32))],
            Conjunction::always(),
        )
        .unwrap();
        let before = e.run(Request::query(&q)).unwrap().result;
        e.insert(&[vec![1, i64::MAX, 3, 4, 5, 6], vec![0; 6]])
            .unwrap();
        let after = e.run(Request::query(&q)).unwrap().result;
        assert_eq!(after.row(0)[0], before.row(0)[0] + 2);
        assert_eq!(after.row(0)[1], i64::MAX, "new max must be visible");
        assert_eq!(e.stats().rows_appended, 2);
        // Every layout grew.
        assert!(e.catalog().groups().all(|g| g.rows() == 102));
        // Differential check post-insert.
        let want = interpret(&e.catalog(), &q).unwrap();
        assert_eq!(e.run(Request::query(&q)).unwrap().result, want);
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let e = engine(4, 50, EngineConfig::no_compile_latency());
        let before = e.snapshot();
        e.insert(&[vec![9, 9, 9, 9]]).unwrap();
        let after = e.snapshot();
        assert_eq!(before.rows(), 50, "old snapshot keeps its row count");
        assert_eq!(after.rows(), 51);
        assert!(before.groups().all(|g| g.rows() == 50));
        // The old snapshot still answers queries on the old data.
        let q = Query::aggregate(
            [Aggregate::count()],
            Conjunction::of([Predicate::gt(0u32, i64::MIN)]),
        )
        .unwrap();
        assert_eq!(interpret(&before, &q).unwrap().row(0)[0], 50);
        assert_eq!(interpret(&after, &q).unwrap().row(0)[0], 51);
        assert_eq!(e.stats().snapshots_published, 1);
    }

    #[test]
    fn insert_rejects_ragged_tuples() {
        let e = engine(4, 10, EngineConfig::no_compile_latency());
        assert!(matches!(
            e.insert(&[vec![1, 2]]),
            Err(EngineError::Storage(StorageError::WidthMismatch {
                expected: 4,
                got: 2
            }))
        ));
        assert_eq!(e.catalog().rows(), 10);
    }

    #[test]
    fn empty_insert_is_a_no_op() {
        // Regression: an empty batch used to clone the full catalog and
        // publish a snapshot for nothing.
        let e = engine(4, 10, EngineConfig::no_compile_latency());
        e.insert(&[]).unwrap();
        let stats = e.stats();
        assert_eq!(stats.snapshots_published, 0);
        assert_eq!(stats.rows_appended, 0);
        assert_eq!(stats.bytes_cloned_on_write, 0);
        assert_eq!(e.catalog().rows(), 10);
    }

    #[test]
    fn space_budget_caps_layout_growth() {
        let rows = 3000;
        let n_attrs = 30;
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 6;
        cfg.window.min = 4;
        // Budget: base columns + roughly two extra 10-attr groups.
        cfg.space_budget_bytes = Some((n_attrs + 22) * 8 * rows);
        let e = engine(n_attrs, rows, cfg);
        // Alternate between three hot clusters so the adviser wants
        // several layouts over time.
        for i in 0..90u32 {
            let base = (i / 10 % 3) * 10;
            let q = expr_query(&[base, base + 1, base + 2, base + 3], base + 4, 0);
            let want = interpret(&e.catalog(), &q).unwrap();
            let got = e.run(Request::query(&q)).unwrap().result;
            assert_eq!(got.fingerprint(), want.fingerprint(), "query {i}");
            assert!(
                e.catalog().total_bytes() <= cfg.space_budget_bytes.unwrap(),
                "budget violated at query {i}: {} bytes",
                e.catalog().total_bytes()
            );
        }
        assert!(e.catalog().covers_schema());
    }

    #[test]
    fn explain_describes_the_plan() {
        let e = engine(8, 200, EngineConfig::no_compile_latency());
        let q = expr_query(&[0, 1, 2], 3, 50);
        let text = e.explain(&q).unwrap();
        assert!(text.contains("strategy:"), "{text}");
        assert!(text.contains("estimated cost:"), "{text}");
        assert!(text.contains("scan L"), "{text}");
        // Still executable afterwards.
        e.run(Request::query(&q)).unwrap();
    }

    #[test]
    fn empty_relation_is_fine() {
        let schema = Schema::with_width(3).into_shared();
        let rel = Relation::columnar(schema, vec![vec![], vec![], vec![]]).unwrap();
        let e = H2oEngine::new(rel, EngineConfig::no_compile_latency());
        let q = Query::project([Expr::col(0u32)], Conjunction::always()).unwrap();
        assert!(e.run(Request::query(&q)).unwrap().result.is_empty());
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let e = engine(3, 100, EngineConfig::no_compile_latency());
        let q = Query::project([Expr::col(99u32)], Conjunction::always()).unwrap();
        assert!(e.run(Request::query(&q)).is_err());
    }

    #[test]
    fn fault_error_messages_are_stable() {
        // Rendered-message regression pins (the repo's error-display
        // convention): harnesses match on these strings.
        assert_eq!(
            EngineError::ExecutionPanicked {
                payload: "boom".into()
            }
            .to_string(),
            "query execution panicked: boom"
        );
        assert_eq!(EngineError::Cancelled.to_string(), "query cancelled");
        assert_eq!(EngineError::Timeout.to_string(), "query deadline expired");
        assert_eq!(
            EngineError::Spawn("os says no".into()).to_string(),
            "failed to spawn engine thread: os says no"
        );
    }

    #[test]
    fn cancelled_query_is_typed_counted_and_side_effect_free() {
        let e = engine(6, 500, EngineConfig::no_compile_latency());
        let q = expr_query(&[0, 1], 2, 100);
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            e.run(Request::query(&q).cancel(&token))
                .map(Outcome::into_result),
            Err(EngineError::Cancelled)
        );
        assert_eq!(e.stats().queries_cancelled, 1);
        // A cancelled run must publish nothing — not even selectivity
        // feedback.
        assert_eq!(e.observed_selectivity(&q), None);
        // The engine stays fully usable; a live token completes normally
        // and is bit-identical to the oracle.
        let want = interpret(&e.catalog(), &q).unwrap();
        let got = e
            .run(Request::query(&q).cancel(&CancelToken::new()))
            .unwrap()
            .result;
        assert_eq!(got.fingerprint(), want.fingerprint());
        let s = e.stats();
        assert_eq!(s.queries_cancelled, 1);
        assert_eq!(s.queries_timed_out, 0);
        assert_eq!(s.queries_panicked, 0);
    }

    #[test]
    fn deadlines_time_out_explicitly_and_implicitly() {
        let e = engine(6, 500, EngineConfig::no_compile_latency());
        let q = expr_query(&[0, 1], 2, 100);
        assert_eq!(
            e.run(Request::query(&q).deadline(Duration::ZERO))
                .map(Outcome::into_result),
            Err(EngineError::Timeout)
        );
        assert_eq!(e.stats().queries_timed_out, 1);
        let want = interpret(&e.catalog(), &q).unwrap();
        let got = e
            .run(Request::query(&q).deadline(Duration::from_secs(3600)))
            .unwrap()
            .result;
        assert_eq!(got.fingerprint(), want.fingerprint());
        assert_eq!(e.stats().queries_timed_out, 1);

        // The config-level deadline applies implicitly to plain execute()…
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.query_deadline = Some(Duration::ZERO);
        let e2 = engine(6, 500, cfg);
        assert_eq!(
            e2.run(Request::query(&q)).map(Outcome::into_result),
            Err(EngineError::Timeout)
        );
        assert_eq!(e2.stats().queries_timed_out, 1);
        // …and an explicit caller token opts out of it.
        let got = e2
            .run(Request::query(&q).cancel(&CancelToken::new()))
            .unwrap()
            .result;
        assert_eq!(got.fingerprint(), want.fingerprint());
        assert_eq!(e2.stats().queries_timed_out, 1);
    }

    #[test]
    fn budget_exhaustion_is_typed_counted_and_side_effect_free() {
        let e = engine(6, 500, EngineConfig::no_compile_latency());
        let q = expr_query(&[0, 1], 2, 100);
        assert_eq!(
            e.run(Request::query(&q).budget(0))
                .map(Outcome::into_result),
            Err(EngineError::BudgetExhausted)
        );
        assert_eq!(e.stats().queries_budget_exhausted, 1);
        // An over-budget run publishes nothing — not even selectivity
        // feedback.
        assert_eq!(e.observed_selectivity(&q), None);
        // A generous budget completes normally, bit-identical to the oracle.
        let want = interpret(&e.catalog(), &q).unwrap();
        let got = e.run(Request::query(&q).budget(1 << 20)).unwrap().result;
        assert_eq!(got.fingerprint(), want.fingerprint());
        assert_eq!(e.stats().queries_budget_exhausted, 1);
        // Rendered-message regression pin.
        assert_eq!(
            EngineError::BudgetExhausted.to_string(),
            "query morsel budget exhausted"
        );
    }

    #[test]
    fn options_compose_on_one_request() {
        // Hint + deadline + cancel token + budget on one request — a
        // spelling the old nine-method surface could not express.
        let e = engine(6, 500, EngineConfig::no_compile_latency());
        let q = expr_query(&[0], 1, 0);
        let want = interpret(&e.catalog(), &q).unwrap();
        let token = CancelToken::new();
        let got = e
            .run(
                Request::query(&q)
                    .hint(0.05)
                    .deadline(Duration::from_secs(3600))
                    .cancel(&token)
                    .budget(1 << 20),
            )
            .unwrap()
            .result;
        assert_eq!(got.fingerprint(), want.fingerprint());
        assert!((e.last_report().unwrap().selectivity_estimate - 0.05).abs() < 1e-9);
    }

    #[test]
    fn join_stop_controls_publish_nothing() {
        let (e, fs, ds) = join_engine(400, 16, EngineConfig::no_compile_latency());
        let b = Query::join(("R", fs.clone()), ("dim", ds.clone()));
        let v0 = b.col("v0").unwrap();
        let tag = b.col("tag").unwrap();
        let q = b
            .on("fk", "k")
            .unwrap()
            .filter_left(Conjunction::of([Predicate::lt(1u32, 500)]))
            .project([v0, tag])
            .unwrap();
        // An expired deadline stops the join with a typed error and
        // publishes nothing: no report, no selectivity feedback.
        assert_eq!(
            e.run(Request::join(&q).deadline(Duration::ZERO))
                .map(Outcome::into_result),
            Err(EngineError::Timeout)
        );
        assert_eq!(e.stats().queries_timed_out, 1);
        assert!(e.last_join_report().is_none());
        assert_eq!(e.observed_join_selectivity(&q, Side::Left), None);
        // A zero morsel budget runs out inside the join (build phase).
        assert_eq!(
            e.run(Request::join(&q).budget(0)).map(Outcome::into_result),
            Err(EngineError::BudgetExhausted)
        );
        assert_eq!(e.stats().queries_budget_exhausted, 1);
        assert!(e.last_join_report().is_none());
        // The engine stays fully usable; the unrestricted answer matches
        // the interpreter on the outcome's own snapshot.
        let out = e.run(Request::join(&q)).unwrap();
        let db = out.snapshot.db().unwrap();
        let want =
            interpret_join(db.relation("R").unwrap(), db.relation("dim").unwrap(), &q).unwrap();
        assert_eq!(out.result.fingerprint(), want.fingerprint());
    }

    #[test]
    fn reorganizer_stop_is_idempotent_and_status_reports() {
        let e = Arc::new(engine(8, 300, EngineConfig::background()));
        let mut h = e.spawn_reorganizer(Duration::from_millis(1)).unwrap();
        let st = h.status();
        assert!(st.alive, "freshly spawned supervisor must be running");
        assert_eq!(st.panics, 0);
        assert_eq!(st.restarts, 0);
        assert_eq!(st.last_backoff, Duration::ZERO);
        h.stop();
        assert!(!h.status().alive, "stop() must join the thread");
        h.stop(); // double stop: clean no-op
        drop(h); // drop after stop: clean no-op
        assert_eq!(e.stats().reorg_panics, 0);
    }

    /// Fault-injection coverage for the engine layer. Failpoint state is
    /// process-global, so everything runs in one combined test (the chaos
    /// CI job runs fault-enabled test binaries single-threaded).
    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_faults_are_isolated_and_recovered() {
        use h2o_storage::failpoints as fp;
        fp::disarm_all();

        // 1. A worker panic mid-query surfaces as ExecutionPanicked — the
        //    process does not abort and the counter moves.
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.parallelism = Some(2);
        cfg.parallel_row_threshold = 0; // force the morsel scheduler…
        cfg.morsel_rows = 64; // …with several morsels over 500 rows
        let e = engine(8, 500, cfg);
        let q = expr_query(&[0, 1, 2], 3, 100);
        let want = interpret(&e.catalog(), &q).unwrap();
        fp::arm_nth("morsel_start", 1);
        match e.run(Request::query(&q)).map(Outcome::into_result) {
            Err(EngineError::ExecutionPanicked { payload }) => {
                assert!(payload.starts_with(fp::PANIC_PREFIX), "got {payload:?}");
            }
            other => panic!("expected ExecutionPanicked, got {other:?}"),
        }
        assert_eq!(e.stats().queries_panicked, 1);
        // The engine is fully usable afterwards (the nth-hit failpoint
        // disarmed itself when it fired).
        let got = e.run(Request::query(&q)).unwrap().result;
        assert_eq!(got.fingerprint(), want.fingerprint());
        assert_eq!(e.stats().queries_panicked, 1);

        // 2. A panic at the publish point leaves the catalog untorn: the
        //    insert fails typed, readers keep the old version.
        let rows_before = e.catalog().rows();
        fp::arm_nth("catalog_publish", 1);
        let err = e.insert(&[vec![1; 8]]);
        assert!(
            matches!(err, Err(EngineError::ExecutionPanicked { .. })),
            "publish fault must be typed: {err:?}"
        );
        assert_eq!(e.catalog().rows(), rows_before, "no torn publish");
        assert!(e.catalog().covers_schema());
        e.insert(&[vec![2; 8]]).unwrap();
        assert_eq!(e.catalog().rows(), rows_before + 1);
        fp::disarm_all();

        // 3. maintain() retires advice only after a build round returns: a
        //    build-phase panic keeps the spec pending, and the retry after
        //    recovery completes the round.
        let mut cfg = EngineConfig::background();
        cfg.window.initial = 8;
        cfg.window.min = 4;
        let e = engine(24, 2000, cfg);
        for i in 0..30 {
            let q = expr_query(&[0, 1, 2, 3], 4, (i % 5) * 100 - 200);
            e.run(Request::query(&q)).unwrap();
        }
        fp::arm_nth("reorg_build", 1);
        let panicked = catch_unwind(AssertUnwindSafe(|| e.maintain()));
        assert!(panicked.is_err(), "armed build phase must panic");
        assert!(
            !e.pending().is_empty(),
            "interrupted spec must survive the panic as pending advice"
        );
        let mut built = 0;
        for _ in 0..4 {
            built += e.maintain().layouts_built;
        }
        assert!(built >= 1, "recovery round must complete the build");
        assert!(e.pending().is_empty());
        assert!(e.stats().reorgs_completed >= 1);

        // 4. The supervised reorganizer absorbs the same fault on its own
        //    thread: panic counted, backoff taken, pump resumed, round
        //    completed.
        let mut cfg = EngineConfig::background();
        cfg.window.initial = 8;
        cfg.window.min = 4;
        let e = Arc::new(engine(24, 2000, cfg));
        let mut h = e.spawn_reorganizer(Duration::from_millis(1)).unwrap();
        // Arm before the workload: the supervisor polls concurrently and
        // must hit the fault on its *first* build of the recommended
        // layout (background-mode queries never reach reorg_build).
        fp::arm_nth("reorg_build", 1);
        for i in 0..30 {
            let q = expr_query(&[10, 11, 12, 13], 14, (i % 5) * 100 - 200);
            e.run(Request::query(&q)).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        while (h.status().panics < 1 || e.stats().reorgs_completed < 1) && Instant::now() < deadline
        {
            h.nudge();
            std::thread::sleep(Duration::from_millis(2));
        }
        let st = h.status();
        h.stop();
        fp::disarm_all();
        assert!(
            st.panics >= 1,
            "supervisor must have caught the panic: {st:?}"
        );
        assert!(
            e.stats().reorgs_completed >= 1,
            "supervisor must resume and finish the round: {:?}",
            e.stats()
        );
        let s = e.stats();
        assert!(s.reorg_panics >= 1, "stats: {s:?}");
        assert!(s.reorg_restarts >= 1, "stats: {s:?}");
        assert!(
            st.restarts >= 1 && st.last_backoff >= REORG_BACKOFF_BASE,
            "{st:?}"
        );
    }

    // ---- multi-relation queries ----

    use h2o_expr::interpret_join;
    use h2o_storage::LogicalType;

    /// Engine whose primary is a fact relation `R(fk, v0, v1)` joined to a
    /// secondary `dim(k, tag)`. `fk = i % dim_rows`; `v1 = (i * 31) % 1000`
    /// scatters values so zone maps cannot prune (scanned-row counts stay
    /// exact for selectivity-feedback assertions).
    fn join_engine(
        fact_rows: usize,
        dim_rows: usize,
        config: EngineConfig,
    ) -> (H2oEngine, Arc<Schema>, Arc<Schema>) {
        let fact_schema = Schema::typed([
            ("fk", LogicalType::I64),
            ("v0", LogicalType::I64),
            ("v1", LogicalType::I64),
        ])
        .into_shared();
        let fact = Relation::columnar(
            fact_schema.clone(),
            vec![
                (0..fact_rows)
                    .map(|i| (i % dim_rows.max(1)) as Value)
                    .collect(),
                (0..fact_rows).map(|i| ((i * 7) % 1000) as Value).collect(),
                (0..fact_rows).map(|i| ((i * 31) % 1000) as Value).collect(),
            ],
        )
        .unwrap();
        let dim_schema =
            Schema::typed([("k", LogicalType::I64), ("tag", LogicalType::I64)]).into_shared();
        let dim = Relation::columnar(
            dim_schema.clone(),
            vec![
                (0..dim_rows).map(|i| i as Value).collect(),
                (0..dim_rows).map(|i| (i as Value) * 10).collect(),
            ],
        )
        .unwrap();
        let e = H2oEngine::new(fact, config);
        e.add_relation("dim", dim).unwrap();
        (e, fact_schema, dim_schema)
    }

    #[test]
    fn join_matches_interpreter_on_one_snapshot() {
        let (e, fs, ds) = join_engine(400, 16, EngineConfig::no_compile_latency());
        let b = Query::join(("R", fs.clone()), ("dim", ds.clone()));
        let v0 = b.col("v0").unwrap();
        let tag = b.col("tag").unwrap();
        let q = b
            .on("fk", "k")
            .unwrap()
            .filter_left(Conjunction::of([Predicate::lt(1u32, 500)]))
            .project([v0, tag])
            .unwrap();
        let out = e.run(Request::join(&q)).unwrap();
        let (db, got) = (out.snapshot.db().unwrap(), out.result);
        let want =
            interpret_join(db.relation("R").unwrap(), db.relation("dim").unwrap(), &q).unwrap();
        assert_eq!(got.fingerprint(), want.fingerprint());
        let rep = e.last_join_report().unwrap();
        assert_eq!(rep.exec.output_pairs, got.rows());
        assert_eq!(e.stats().queries, 1);

        // A grouped rollup over the same join, same oracle.
        let b = Query::join(("R", fs), ("dim", ds));
        let v0 = b.col("v0").unwrap();
        let tag = b.col("tag").unwrap();
        let q = b
            .on("fk", "k")
            .unwrap()
            .grouped([tag], [Aggregate::sum(v0), Aggregate::count()])
            .unwrap();
        let out = e.run(Request::join(&q)).unwrap();
        let (db, got) = (out.snapshot.db().unwrap(), out.result);
        let want =
            interpret_join(db.relation("R").unwrap(), db.relation("dim").unwrap(), &q).unwrap();
        assert_eq!(got, want, "grouped join output is sorted: bit-identical");
    }

    #[test]
    fn greedy_build_side_learns_from_observed_selectivity() {
        // Left: 1000 rows with a filter matching exactly 10 (sel 0.01).
        // Right: 100 rows, no filter (sel 1.0). The first run only has the
        // default estimate (0.5) for the left side — 500 estimated rows
        // against 100 — so it builds over the right. Execution observes
        // the true 0.01, and the second run flips the build side.
        let (e, fs, ds) = join_engine(1000, 100, EngineConfig::no_compile_latency());
        let b = Query::join(("R", fs), ("dim", ds));
        let v0 = b.col("v0").unwrap();
        let tag = b.col("tag").unwrap();
        let q = b
            .on("fk", "k")
            .unwrap()
            .filter_left(Conjunction::of([Predicate::lt(2u32, 10)]))
            .project([v0, tag])
            .unwrap();

        let first = e.run(Request::join(&q)).unwrap().result;
        let r1 = e.last_join_report().unwrap();
        assert!(
            !r1.build_is_left,
            "default estimate must build right: {r1:?}"
        );
        assert!((r1.left_selectivity_estimate - 0.5).abs() < 1e-12);
        let obs = e.observed_join_selectivity(&q, Side::Left).unwrap();
        assert!((obs - 0.01).abs() < 1e-9, "observed {obs}");
        assert_eq!(
            e.observed_join_selectivity(&q, Side::Right),
            None,
            "no filter, no history"
        );

        let second = e.run(Request::join(&q)).unwrap().result;
        let r2 = e.last_join_report().unwrap();
        assert!(
            r2.build_is_left,
            "observed selectivity must flip the build side: {r2:?}"
        );
        assert!((r2.left_selectivity_estimate - 0.01).abs() < 1e-9);
        // Build-side choice is invisible in the result.
        assert_eq!(first.fingerprint(), second.fingerprint());
    }

    #[test]
    fn forced_build_side_is_bit_identical_and_reported() {
        let (e, fs, ds) = join_engine(300, 8, EngineConfig::no_compile_latency());
        let b = Query::join(("R", fs), ("dim", ds));
        let v1 = b.col("v1").unwrap();
        let tag = b.col("tag").unwrap();
        let q = b
            .on("fk", "k")
            .unwrap()
            .filter_right(Conjunction::of([Predicate::lt(0u32, 6)]))
            .project([v1, tag])
            .unwrap();
        let a = e
            .run(Request::join(&q).build_side(Side::Left))
            .unwrap()
            .result;
        assert!(e.last_join_report().unwrap().exec.build_is_left);
        let bres = e
            .run(Request::join(&q).build_side(Side::Right))
            .unwrap()
            .result;
        assert!(!e.last_join_report().unwrap().exec.build_is_left);
        assert_eq!(a.fingerprint(), bres.fingerprint());
    }

    #[test]
    fn join_error_messages_are_stable() {
        let (e, fs, ds) = join_engine(50, 4, EngineConfig::no_compile_latency());
        // Unknown relation name, resolved at execution time.
        let b = Query::join(("R", fs.clone()), ("nope", ds.clone()));
        let v0 = b.col("v0").unwrap();
        let q = b.on("fk", "k").unwrap().project([v0]).unwrap();
        assert_eq!(
            e.run(Request::join(&q)).unwrap_err().to_string(),
            "invalid query: unknown relation: nope"
        );
        // The reserved primary name cannot be rebound.
        let dim = Relation::columnar(ds.clone(), vec![vec![], vec![]]).unwrap();
        assert_eq!(
            e.add_relation(PRIMARY_RELATION, dim)
                .unwrap_err()
                .to_string(),
            "relation binding error: \"R\" is the reserved primary relation name"
        );
        // A query typed against a schema other than the engine's binding.
        let other = Schema::typed([
            ("fk", LogicalType::I64),
            ("v0", LogicalType::F64),
            ("v1", LogicalType::I64),
        ])
        .into_shared();
        let b = Query::join(("R", other), ("dim", ds));
        let v1 = b.col("v1").unwrap();
        let q = b.on("fk", "k").unwrap().project([v1]).unwrap();
        let err = e.run(Request::join(&q)).unwrap_err().to_string();
        assert!(
            err.contains("typed against a different schema for relation R"),
            "{err}"
        );
        let _ = fs;
    }

    #[test]
    fn secondary_relations_are_snapshot_isolated() {
        let (e, _fs, _ds) = join_engine(100, 8, EngineConfig::no_compile_latency());
        assert_eq!(e.db_snapshot().relation_names(), vec!["R", "dim"]);
        let before = e.db_snapshot();
        e.insert_into("dim", &[vec![100, 1000], vec![101, 1010]])
            .unwrap();
        // The pre-insert snapshot still sees the old version; a fresh
        // resolution sees the new rows.
        assert_eq!(before.relation("dim").unwrap().rows(), 8);
        assert_eq!(e.relation_snapshot("dim").unwrap().rows(), 10);
        // Inserting into an unbound name is an error; into the primary
        // name, an alias for `insert`.
        assert!(e.insert_into("nope", &[vec![1, 2]]).is_err());
        e.insert_into(PRIMARY_RELATION, &[vec![0, 0, 0]]).unwrap();
        assert_eq!(e.snapshot().rows(), 101);
    }

    #[test]
    fn join_workload_drives_adviser_to_key_payload_group() {
        // A join-heavy workload over the primary must make the adviser
        // materialize a group covering the key + payload columns it
        // gathers, exactly as a grouped workload does for its keys.
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 8;
        cfg.window.min = 4;
        let fact_schema = Schema::with_width(20).into_shared();
        let mut cols = columns(20, 3000);
        for v in &mut cols[0] {
            *v = v.rem_euclid(16);
        }
        let fact = Relation::columnar(fact_schema.clone(), cols).unwrap();
        let e = H2oEngine::new(fact, cfg);
        let dim_schema =
            Schema::typed([("k", LogicalType::I64), ("tag", LogicalType::I64)]).into_shared();
        let dim = Relation::columnar(
            dim_schema.clone(),
            vec![(0..16).collect(), (0..16).map(|i| i * 10).collect()],
        )
        .unwrap();
        e.add_relation("dim", dim).unwrap();

        for i in 0..40i64 {
            let b = Query::join(("R", fact_schema.clone()), ("dim", dim_schema.clone()));
            let p1 = b.lcol("a1").unwrap();
            let p2 = b.lcol("a2").unwrap();
            let tag = b.rcol("tag").unwrap();
            let q = b
                .on("a0", "k")
                .unwrap()
                .filter_left(Conjunction::of([Predicate::lt(3u32, (i % 7) * 200 - 600)]))
                .project([p1, p2, tag])
                .unwrap();
            let out = e.run(Request::join(&q)).unwrap();
            let (db, got) = (out.snapshot.db().unwrap(), out.result);
            let want =
                interpret_join(db.relation("R").unwrap(), db.relation("dim").unwrap(), &q).unwrap();
            assert_eq!(got.fingerprint(), want.fingerprint(), "join query {i}");
        }
        let stats = e.stats();
        assert!(stats.adaptations >= 1, "window must trigger adaptation");
        assert!(
            stats.layouts_created >= 1,
            "join workload must materialize a layout; stats: {stats:?}"
        );
        // Key {0} + payload {1,2} form the hot select cluster.
        let hot: h2o_storage::AttrSet = [0usize, 1, 2].into_iter().collect();
        assert!(
            e.catalog().find_superset(&hot).is_some(),
            "expected a group covering join key + payload"
        );
    }
}
