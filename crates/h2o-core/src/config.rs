//! Engine configuration.

use h2o_adapt::{AdviserConfig, WindowConfig};
use h2o_cost::HardwareParams;
use h2o_exec::parallel::{DEFAULT_MORSEL_ROWS, DEFAULT_SERIAL_THRESHOLD};
use h2o_exec::{CompileCostModel, ExecPolicy};
use std::time::Duration;

/// All tuning knobs of the adaptive engine in one place. The defaults
/// reproduce the paper's setup scaled to this environment — with one
/// deliberate deviation: intra-query parallelism defaults to all available
/// cores, where the paper's prototype is single-threaded (use
/// [`EngineConfig::single_threaded`] for paper-faithful comparisons, as
/// the figure-reproduction binaries do). Everything is overridable for
/// experiments ("hands-free" means no knob is *required*, not that none
/// exists).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Dynamic monitoring window configuration (§3.2). The paper's Fig. 7
    /// run starts at 20 queries.
    pub window: WindowConfig,
    /// Candidate generation/selection knobs.
    pub adviser: AdviserConfig,
    /// Cost-model hardware parameters.
    pub hardware: HardwareParams,
    /// Simulated operator-generation latency charged on operator-cache
    /// misses (see `h2o-exec::opcache`). Defaults to the scaled-down
    /// equivalent of the paper's 10–150 ms external-compiler overhead.
    pub compile_cost: CompileCostModel,
    /// Operator cache capacity (number of generated operators retained).
    pub opcache_capacity: usize,
    /// Master switch for the adaptation mechanism. With `false` the engine
    /// degenerates to a fixed-layout engine with cost-based strategy choice
    /// (useful for ablations).
    pub adaptive: bool,
    /// Selectivity assumed for filters never observed before.
    pub default_selectivity: f64,
    /// Storage budget in bytes for *all* layouts together, or `None` for
    /// unlimited. When a lazy materialization would exceed the budget the
    /// engine first evicts least-recently-used redundant layouts; if no
    /// layout can be evicted safely, the materialization is skipped. (The
    /// paper motivates this: "there is not enough space to store these
    /// alternatives" is exactly why H2O cannot prepare every layout.)
    pub space_budget_bytes: Option<usize>,
    /// Intra-query worker threads (morsel-driven parallelism — a deviation
    /// from the paper's single-threaded prototype; see
    /// `h2o_exec::parallel`). `None` uses the host's available
    /// parallelism; `Some(1)` forces the paper-faithful serial path.
    pub parallelism: Option<usize>,
    /// Rows per morsel for parallel scans.
    pub morsel_rows: usize,
    /// Serial fallback: relations with at most this many rows always
    /// execute on the calling thread, so tiny scans never pay fork/join
    /// overhead.
    pub parallel_row_threshold: usize,
    /// Moves adaptive reorganization off the query path. With `false` (the
    /// default, the paper's behavior) a query that benefits from a pending
    /// layout materializes it *while answering* through the fused
    /// reorganization operator. With `true` queries never reorganize:
    /// adaptation rounds and layout builds run only inside
    /// [`H2oEngine::maintain`](crate::H2oEngine::maintain) — typically
    /// pumped by a background reorganizer thread
    /// ([`H2oEngine::spawn_reorganizer`](crate::H2oEngine::spawn_reorganizer))
    /// — which builds new groups from a snapshot and atomically publishes
    /// them while in-flight queries keep reading their own snapshots.
    pub background_reorg: bool,
    /// Default per-query deadline. When set, every
    /// [`H2oEngine::run`](crate::H2oEngine::run) call runs under an
    /// implicit [`CancelToken`](h2o_exec::CancelToken) armed with this
    /// timeout and fails with
    /// [`EngineError::Timeout`](crate::EngineError::Timeout) once it
    /// expires. Requests that set any stop-control option themselves — a
    /// deadline, a cancel token or a morsel budget
    /// ([`ExecOptions`](crate::ExecOptions)) — opt out of the implicit
    /// deadline. `None` (the default) never times queries out.
    pub query_deadline: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            window: WindowConfig::default(),
            adviser: AdviserConfig::default(),
            hardware: HardwareParams::default(),
            compile_cost: CompileCostModel::scaled_default(),
            opcache_capacity: 256,
            adaptive: true,
            default_selectivity: 0.5,
            space_budget_bytes: None,
            parallelism: None,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            parallel_row_threshold: DEFAULT_SERIAL_THRESHOLD,
            background_reorg: false,
            query_deadline: None,
        }
    }
}

impl EngineConfig {
    /// A configuration with adaptation disabled (static-layout ablation).
    pub fn non_adaptive() -> Self {
        EngineConfig {
            adaptive: false,
            ..EngineConfig::default()
        }
    }

    /// A configuration with zero simulated compile latency (pure library
    /// use; unit tests).
    pub fn no_compile_latency() -> Self {
        EngineConfig {
            compile_cost: CompileCostModel::ZERO,
            ..EngineConfig::default()
        }
    }

    /// A configuration for shared multi-client serving: adaptation advice
    /// and reorganization run only in `maintain()` (background reorganizer),
    /// never on the query path, and no compile latency is simulated.
    pub fn background() -> Self {
        EngineConfig {
            background_reorg: true,
            compile_cost: CompileCostModel::ZERO,
            ..EngineConfig::default()
        }
    }

    /// A configuration pinned to the paper's single-threaded execution
    /// model (useful for reproducing the paper's absolute numbers).
    pub fn single_threaded() -> Self {
        EngineConfig {
            parallelism: Some(1),
            ..EngineConfig::default()
        }
    }

    /// The execution-parallelism policy these knobs describe; handed to
    /// `h2o-exec` on every scan and reorganization.
    pub fn exec_policy(&self) -> ExecPolicy {
        ExecPolicy {
            parallelism: self.parallelism,
            morsel_rows: self.morsel_rows.max(1),
            serial_threshold: self.parallel_row_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = EngineConfig::default();
        assert!(c.adaptive);
        assert_eq!(c.window.initial, 20);
        assert!(c.default_selectivity > 0.0 && c.default_selectivity <= 1.0);
        assert_eq!(c.query_deadline, None, "no implicit deadline by default");
    }

    #[test]
    fn presets() {
        assert!(!EngineConfig::non_adaptive().adaptive);
        assert!(EngineConfig::background().background_reorg);
        assert!(!EngineConfig::default().background_reorg);
        assert_eq!(
            EngineConfig::no_compile_latency().compile_cost,
            CompileCostModel::ZERO
        );
        assert_eq!(EngineConfig::single_threaded().parallelism, Some(1));
    }

    #[test]
    fn exec_policy_reflects_knobs() {
        let mut c = EngineConfig {
            parallelism: Some(4),
            morsel_rows: 1000,
            parallel_row_threshold: 50,
            ..EngineConfig::default()
        };
        let p = c.exec_policy();
        assert_eq!(p.threads(), 4);
        assert_eq!(p.morsel_rows, 1000);
        assert!(p.is_serial_for(50));
        assert!(!p.is_serial_for(5000));
        // morsel_rows = 0 is clamped rather than dividing by zero.
        c.morsel_rows = 0;
        assert_eq!(c.exec_policy().morsel_rows, 1);
    }
}
