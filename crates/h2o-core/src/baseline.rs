//! Static baseline engines: the row-store and column-store H2O is compared
//! against.
//!
//! "We compare H2O against a column-store implementation and a row-store
//! implementation. In both cases, we use our own engines which share the
//! same design principles and much of the code base with H2O; thus these
//! comparisons purely reflect the differences in data layouts and access
//! patterns." (§4.1)
//!
//! * [`StaticKind::RowStore`] — single full-width group, fused
//!   volcano-style execution with predicate push-down (§3.3 "Row-major").
//! * [`StaticKind::ColumnStore`] — one group per attribute, pure DSM
//!   column-at-a-time execution with selection vectors and intermediate
//!   materialization (§3.3 "Column-major").
//!
//! Both share H2O's kernels, operator cache and (optionally) its simulated
//! compile latency; the only differences are the fixed layout and the fixed
//! strategy — exactly the experimental isolation the paper argues for.

use h2o_exec::{
    execute_with_policy as exec_execute_with_policy, AccessPlan, CompileCostModel, ExecError,
    ExecPolicy, OperatorCache, Strategy,
};
use h2o_expr::{Query, QueryResult};
use h2o_storage::catalog::CoverPolicy;
use h2o_storage::{LayoutId, Relation, Schema, StorageError, Value};
use std::sync::Arc;

/// Which fixed design the static engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticKind {
    RowStore,
    ColumnStore,
}

impl StaticKind {
    /// Human-readable name for harness output.
    pub fn name(self) -> &'static str {
        match self {
            StaticKind::RowStore => "row-store",
            StaticKind::ColumnStore => "column-store",
        }
    }
}

/// A fixed-layout, fixed-strategy engine.
pub struct StaticEngine {
    relation: Relation,
    kind: StaticKind,
    opcache: OperatorCache,
    /// Intra-query parallelism policy. Defaults to serial (the paper's
    /// single-threaded baselines); [`StaticEngine::set_exec_policy`] opts
    /// into morsel parallelism for scaling comparisons.
    policy: ExecPolicy,
}

impl StaticEngine {
    /// Builds the engine from raw columns, laying the data out according to
    /// `kind`.
    pub fn new(
        schema: Arc<Schema>,
        columns: Vec<Vec<Value>>,
        kind: StaticKind,
        compile_cost: CompileCostModel,
    ) -> Result<Self, StorageError> {
        let relation = match kind {
            StaticKind::RowStore => Relation::row_major(schema, columns)?,
            StaticKind::ColumnStore => Relation::columnar(schema, columns)?,
        };
        Ok(StaticEngine {
            relation,
            kind,
            opcache: OperatorCache::new(256, compile_cost),
            policy: ExecPolicy::serial(),
        })
    }

    /// Wraps an existing relation (its layouts must match `kind`'s
    /// expectations for the results to be meaningful; execution is correct
    /// regardless).
    pub fn from_relation(
        relation: Relation,
        kind: StaticKind,
        compile_cost: CompileCostModel,
    ) -> Self {
        StaticEngine {
            relation,
            kind,
            opcache: OperatorCache::new(256, compile_cost),
            policy: ExecPolicy::serial(),
        }
    }

    /// Sets the intra-query parallelism policy (default: serial).
    pub fn set_exec_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The engine kind.
    pub fn kind(&self) -> StaticKind {
        self.kind
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The fixed plan this engine uses for a query.
    pub fn plan(&self, q: &Query) -> Result<AccessPlan, ExecError> {
        let catalog = self.relation.catalog();
        match self.kind {
            StaticKind::RowStore => {
                // The row-store always scans its single full-width layout.
                let all: Vec<LayoutId> = catalog.layout_ids();
                Ok(AccessPlan::new(all, Strategy::FusedVolcano))
            }
            StaticKind::ColumnStore => {
                // The column-store reads exactly the referenced columns.
                let cover = catalog.cover(&q.all_attrs(), CoverPolicy::LeastExcessWidth)?;
                let ids: Vec<LayoutId> = cover.into_iter().map(|(id, _)| id).collect();
                Ok(AccessPlan::new(ids, Strategy::ColumnMajor))
            }
        }
    }

    /// Executes a query with the engine's fixed layout and strategy.
    pub fn execute(&self, q: &Query) -> Result<QueryResult, ExecError> {
        let plan = self.plan(q)?;
        let op = self
            .opcache
            .get_or_compile(self.relation.catalog(), &plan, q)?;
        exec_execute_with_policy(self.relation.catalog(), &op, &self.policy)
    }

    /// Operator-cache statistics.
    pub fn opcache_stats(&self) -> h2o_exec::opcache::CacheStats {
        self.opcache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_expr::{interpret, Aggregate, Conjunction, Expr, Predicate};
    use h2o_storage::AttrId;

    fn cols(n: usize, rows: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|k| {
                (0..rows)
                    .map(|r| ((k * 997 + r * 13) % 501) as Value - 250)
                    .collect()
            })
            .collect()
    }

    fn engines(n: usize, rows: usize) -> (StaticEngine, StaticEngine) {
        let schema = Schema::with_width(n).into_shared();
        let row = StaticEngine::new(
            schema.clone(),
            cols(n, rows),
            StaticKind::RowStore,
            CompileCostModel::ZERO,
        )
        .unwrap();
        let col = StaticEngine::new(
            schema,
            cols(n, rows),
            StaticKind::ColumnStore,
            CompileCostModel::ZERO,
        )
        .unwrap();
        (row, col)
    }

    #[test]
    fn row_and_column_agree_with_interpreter() {
        let (row, col) = engines(10, 400);
        let queries = [
            Query::project(
                [Expr::sum_of([AttrId(0), AttrId(1), AttrId(2)])],
                Conjunction::of([Predicate::lt(3u32, 0), Predicate::gt(4u32, -200)]),
            )
            .unwrap(),
            Query::aggregate(
                [
                    Aggregate::max(Expr::col(5u32)),
                    Aggregate::sum(Expr::col(6u32)),
                    Aggregate::count(),
                ],
                Conjunction::of([Predicate::le(7u32, 100)]),
            )
            .unwrap(),
            Query::project([Expr::col(9u32)], Conjunction::always()).unwrap(),
            Query::grouped(
                [Expr::col(0u32)],
                [Aggregate::sum(Expr::col(1u32)), Aggregate::count()],
                Conjunction::of([Predicate::gt(2u32, 0)]),
            )
            .unwrap(),
        ];
        for q in &queries {
            let want = interpret(row.relation().catalog(), q).unwrap();
            assert_eq!(row.execute(q).unwrap().fingerprint(), want.fingerprint());
            assert_eq!(col.execute(q).unwrap().fingerprint(), want.fingerprint());
        }
    }

    #[test]
    fn plans_reflect_fixed_designs() {
        let (row, col) = engines(6, 50);
        let q = Query::project([Expr::col(2u32)], Conjunction::always()).unwrap();
        let rp = row.plan(&q).unwrap();
        assert_eq!(rp.strategy, Strategy::FusedVolcano);
        assert_eq!(rp.layouts.len(), 1, "row store has one wide layout");
        let cp = col.plan(&q).unwrap();
        assert_eq!(cp.strategy, Strategy::ColumnMajor);
        assert_eq!(cp.layouts.len(), 1, "only the referenced column");
    }

    #[test]
    fn column_store_reads_only_needed_columns() {
        let (_, col) = engines(20, 30);
        let q = Query::aggregate(
            [
                Aggregate::sum(Expr::col(3u32)),
                Aggregate::sum(Expr::col(9u32)),
            ],
            Conjunction::of([Predicate::gt(15u32, 0)]),
        )
        .unwrap();
        let plan = col.plan(&q).unwrap();
        assert_eq!(plan.layouts.len(), 3);
    }

    #[test]
    fn operator_cache_shared_across_queries() {
        let (row, _) = engines(4, 50);
        let q1 = Query::aggregate(
            [Aggregate::count()],
            Conjunction::of([Predicate::lt(0u32, 5)]),
        )
        .unwrap();
        let q2 = Query::aggregate(
            [Aggregate::count()],
            Conjunction::of([Predicate::lt(0u32, 90)]),
        )
        .unwrap();
        row.execute(&q1).unwrap();
        row.execute(&q2).unwrap();
        let stats = row.opcache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn kind_names() {
        assert_eq!(StaticKind::RowStore.name(), "row-store");
        assert_eq!(StaticKind::ColumnStore.name(), "column-store");
    }
}
