//! The optimal-layout oracle.
//!
//! Fig. 7 plots a fourth curve: "the performance we would get for each
//! single query if we had a perfectly tailored data layout as well as the
//! most appropriate code to access the data (without including the cost of
//! creating the data layout). We did this manually assuming ... perfect
//! workload knowledge and ample time to prepare the layout for each query."
//!
//! [`prepare`] builds exactly that: a column group containing precisely the
//! query's attributes plus a fused compiled operator over it. The
//! preparation cost is deliberately *outside* the object so harnesses can
//! time [`OracleQuery::run`] alone.

use h2o_exec::{compile, execute, AccessPlan, CompiledOp, ExecError, Strategy};
use h2o_expr::{Query, QueryResult};
use h2o_storage::{AttrId, LayoutCatalog, Relation};

/// A query pre-staged on its perfect layout.
pub struct OracleQuery {
    catalog: LayoutCatalog,
    op: CompiledOp,
}

/// Builds the perfect layout for `q` (an exact-attribute column group
/// stitched from `relation`'s current layouts) and compiles the fused
/// operator over it.
pub fn prepare(relation: &Relation, q: &Query) -> Result<OracleQuery, ExecError> {
    let attrs: Vec<AttrId> = q.all_attrs().to_vec();
    let group = h2o_exec::reorg::materialize(relation.catalog(), &attrs)?;
    let mut catalog = LayoutCatalog::new(relation.schema().clone(), relation.rows());
    let id = catalog.add_group(group, 0)?;
    let plan = AccessPlan::new(vec![id], Strategy::FusedVolcano);
    let op = compile(&catalog, &plan, q)?;
    Ok(OracleQuery { catalog, op })
}

impl OracleQuery {
    /// Executes the staged query (this is the part harnesses time).
    pub fn run(&self) -> Result<QueryResult, ExecError> {
        execute(&self.catalog, &self.op)
    }

    /// Re-stages the operator for another query over the **same attribute
    /// set** (e.g. the next query of the same workload class, differing in
    /// predicate constants). The expensive tailored layout is reused;
    /// only the operator is regenerated.
    pub fn restage(&mut self, q: &Query) -> Result<(), ExecError> {
        let plan = self.op.plan().clone();
        self.op = compile(&self.catalog, &plan, q)?;
        Ok(())
    }

    /// Bytes of the tailored layout (for reporting).
    pub fn layout_bytes(&self) -> usize {
        self.catalog.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_expr::{interpret, Aggregate, Conjunction, Expr, Predicate};
    use h2o_storage::{Schema, Value};

    #[test]
    fn oracle_matches_reference() {
        let schema = Schema::with_width(8).into_shared();
        let cols: Vec<Vec<Value>> = (0..8)
            .map(|k| {
                (0..200)
                    .map(|r| ((k * 7 + r * 3) % 101) as Value - 50)
                    .collect()
            })
            .collect();
        let rel = Relation::columnar(schema, cols).unwrap();
        let queries = [
            Query::project(
                [Expr::sum_of([AttrId(0), AttrId(2)])],
                Conjunction::of([Predicate::gt(5u32, 0)]),
            )
            .unwrap(),
            Query::aggregate([Aggregate::min(Expr::col(7u32))], Conjunction::always()).unwrap(),
        ];
        for q in &queries {
            let oracle = prepare(&rel, q).unwrap();
            let got = oracle.run().unwrap();
            let want = interpret(rel.catalog(), q).unwrap();
            assert_eq!(got.fingerprint(), want.fingerprint());
            assert!(oracle.layout_bytes() > 0);
        }
    }

    #[test]
    fn oracle_layout_is_exactly_the_query_footprint() {
        let schema = Schema::with_width(10).into_shared();
        let cols: Vec<Vec<Value>> = (0..10).map(|_| vec![0; 50]).collect();
        let rel = Relation::columnar(schema, cols).unwrap();
        let q = Query::aggregate(
            [Aggregate::sum(Expr::col(3u32))],
            Conjunction::of([Predicate::lt(6u32, 1)]),
        )
        .unwrap();
        let oracle = prepare(&rel, &q).unwrap();
        // 2 attributes × 8 bytes × 50 rows.
        assert_eq!(oracle.layout_bytes(), 2 * 8 * 50);
    }
}
