//! The cost model proper: Eq. 2 (plan cost), transformation cost, and
//! Eq. 1 (configuration cost over a monitoring window).

use crate::params::HardwareParams;
use crate::pattern::AccessPattern;
use h2o_exec::Strategy;
use h2o_storage::{AttrSet, VALUE_BYTES};

/// Where a layout's data lives. The paper's experiments (and this
/// reproduction's) are hot in-memory runs; `Disk` exists so the Eq. 2
/// `max(IO, CPU)` structure is exercised and testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residence {
    Memory,
    Disk,
}

/// An abstract layout: just its attribute set. Width in bytes follows from
/// the fixed 8-byte attribute size. Used both for materialized groups and
/// for *candidate* groups the adaptation mechanism is still evaluating.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupSpec {
    pub attrs: AttrSet,
}

impl GroupSpec {
    /// Creates a spec over an attribute set.
    pub fn new(attrs: AttrSet) -> Self {
        GroupSpec { attrs }
    }

    /// Width of one tuple of this group, bytes.
    pub fn width_bytes(&self) -> f64 {
        (self.attrs.len() * VALUE_BYTES) as f64
    }

    /// Total size for `rows` tuples, bytes.
    pub fn bytes(&self, rows: usize) -> f64 {
        self.width_bytes() * rows as f64
    }
}

/// An abstract plan: the groups it reads, the strategy, and the residence.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    pub strategy: Strategy,
    pub groups: Vec<GroupSpec>,
    pub residence: Residence,
}

/// Which role a relation plays in a hash join. The build side is scanned
/// once into a hash table (insert + payload copy per qualifying tuple); the
/// probe side streams against that table (one probe per qualifying tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinRole {
    Build,
    Probe,
}

/// Hash-table probe: key hash + bucket compare. Shared by grouped
/// aggregation (every qualifying tuple folds through a table) and the
/// probe side of a hash join.
const HASH_PROBE_OPS: f64 = 8.0;

/// Hash-table insert: the probe work plus bucket append and amortized
/// growth. Charged per qualifying build-side tuple.
const HASH_INSERT_OPS: f64 = 12.0;

/// Join-filter build: one hash of the key lanes plus a blocked-bloom word
/// OR and the range min/max fold. Charged per qualifying build-side tuple
/// (the filter is derived from the same gathered parts the table is built
/// from, so there is no extra scan).
const BLOOM_BUILD_OPS: f64 = 2.0;

/// Join-filter test: the range compares plus one blocked-bloom word
/// probe, paid per qualifying probe-side tuple *before* the hash lookup.
/// Deliberately priced below [`HASH_PROBE_OPS`]: the filter touches one
/// cache-resident word where the table probe takes a random access.
const BLOOM_TEST_OPS: f64 = 2.0;

/// The H2O cost model.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    params: HardwareParams,
}

impl CostModel {
    /// A model with explicit hardware parameters.
    pub fn new(params: HardwareParams) -> Self {
        CostModel { params }
    }

    /// The hardware parameters in use.
    pub fn params(&self) -> &HardwareParams {
        &self.params
    }

    // ------------------------------------------------------------------
    // Cache-miss primitives (the CPU side of Eq. 2)
    // ------------------------------------------------------------------

    /// Expected cache lines touched per tuple when `accessed` attributes of
    /// a `width_bytes`-wide tuple are read.
    ///
    /// * Narrow tuples (`width <= line`): consecutive tuples share lines, so
    ///   a scan streams the whole group — `width/line` lines per tuple
    ///   amortized.
    /// * Wide tuples: the tuple spans `m = width/line` lines and the
    ///   `accessed` attributes hit `m * (1 - (1 - 1/m)^accessed)` distinct
    ///   lines in expectation (uniform placement) — the standard
    ///   occupancy/"balls into bins" estimate used by HYRISE-style models.
    fn lines_per_tuple(&self, width_bytes: f64, accessed: usize) -> f64 {
        if accessed == 0 || width_bytes <= 0.0 {
            return 0.0;
        }
        let line = self.params.cache_line_bytes;
        if width_bytes <= line {
            width_bytes / line
        } else {
            let m = width_bytes / line;
            m * (1.0 - (1.0 - 1.0 / m).powi(accessed as i32))
        }
    }

    /// Expected cache misses for a full sequential scan of a group.
    pub fn scan_misses(&self, rows: usize, width_bytes: f64, accessed: usize) -> f64 {
        rows as f64 * self.lines_per_tuple(width_bytes, accessed)
    }

    /// Expected cache misses for gathering `selected` of `rows` tuples
    /// (positional access through a selection vector). Each selected tuple
    /// pays at least one full line; capped by the full-scan cost, which a
    /// dense gather degenerates to.
    pub fn gather_misses(
        &self,
        selected: f64,
        rows: usize,
        width_bytes: f64,
        accessed: usize,
    ) -> f64 {
        if accessed == 0 {
            return 0.0;
        }
        // A sparse gather pays at least one line per selected tuple; a dense
        // gather degenerates to the sequential scan cost.
        let per_tuple = self.lines_per_tuple(width_bytes, accessed).max(1.0);
        (selected * per_tuple).min(self.scan_misses(rows, width_bytes, accessed))
    }

    // ------------------------------------------------------------------
    // I/O primitives
    // ------------------------------------------------------------------

    /// Sequential read cost of `bytes` for the given residence. Memory
    /// residence costs zero I/O — bandwidth is accounted on the CPU side
    /// through cache misses (hot in-memory runs, as in the paper's
    /// experiments).
    pub fn io_seq(&self, residence: Residence, bytes: f64) -> f64 {
        match residence {
            Residence::Memory => 0.0,
            Residence::Disk => bytes / self.params.disk_bandwidth,
        }
    }

    /// Random-access read cost: per-access seek plus transfer.
    pub fn io_random(&self, residence: Residence, accesses: f64, bytes: f64) -> f64 {
        match residence {
            Residence::Memory => 0.0,
            Residence::Disk => {
                accesses * self.params.disk_seek_seconds + bytes / self.params.disk_bandwidth
            }
        }
    }

    /// Cost of materializing `bytes` of intermediate results in memory,
    /// priced in cache-line transfers so it is commensurable with the scan
    /// and gather miss costs (write-allocate: every written line is a
    /// miss).
    pub fn materialize(&self, bytes: f64) -> f64 {
        self.params.lines(bytes) * self.params.cache_miss_seconds
    }

    // ------------------------------------------------------------------
    // Eq. 2: plan cost
    // ------------------------------------------------------------------

    /// Estimated cost of executing a query with `pat`'s access pattern
    /// using `plan`, over a relation of `rows` tuples.
    ///
    /// Implements `q(L) = Σ max(cost_IO, cost_CPU)` per layout, plus
    /// strategy-specific intermediate-result and output-materialization
    /// terms.
    pub fn plan_cost(&self, pat: &AccessPattern, plan: &PlanSpec, rows: usize) -> f64 {
        let p = &self.params;
        let n = rows as f64;
        let sel = pat.selectivity;
        let selected = n * sel;
        let miss = p.cache_miss_seconds;
        let needed = pat.all_attrs();

        // Output materialization (row-major result block, §3.3). Grouped
        // output has one row per distinct key; with no cardinality
        // statistics the model prices the upper bound (`selected` rows).
        let out_bytes = if pat.is_aggregate {
            (pat.output_width * VALUE_BYTES) as f64
        } else {
            selected * (pat.output_width * VALUE_BYTES) as f64
        };
        // Grouped aggregation pays one hash-table probe (key hash + bucket
        // compare + accumulator update) per qualifying tuple. The charge is
        // strategy-independent — all three strategies fold through the same
        // table — so relative plan choice stays driven by scan/gather
        // costs, exactly as for scalar aggregates.
        let group_cost = if pat.is_grouped {
            selected * (HASH_PROBE_OPS + pat.output_width as f64) * p.cpu_op_seconds
        } else {
            0.0
        };
        let out_cost = self.materialize(out_bytes) + group_cost;

        match plan.strategy {
            Strategy::FusedVolcano => {
                // One pass over every group; all accessed attributes of a
                // group are charged at scan rate (predicates force the
                // stream regardless of selectivity).
                let mut total = 0.0;
                let mut active_groups = 0usize;
                for g in &plan.groups {
                    let acc_where = g.attrs.intersection_len(&pat.where_);
                    let acc_all = g.attrs.intersection_len(&needed);
                    if acc_all == 0 {
                        continue;
                    }
                    active_groups += 1;
                    let cpu = self.scan_misses(rows, g.width_bytes(), acc_all) * miss
                        + n * acc_where as f64 * p.cpu_value_seconds;
                    let io = self.io_seq(plan.residence, g.bytes(rows));
                    total += io.max(cpu);
                }
                // Stitching across multiple groups in the same pass.
                total += n * active_groups.saturating_sub(1) as f64 * p.cpu_stitch_seconds;
                // Select-item compute only for qualifying tuples.
                total += selected * pat.select_ops as f64 * p.cpu_op_seconds;
                total + out_cost
            }
            Strategy::SelVector => {
                let mut total = 0.0;
                // Phase 1: full scan of groups holding where attributes.
                for g in &plan.groups {
                    let acc = g.attrs.intersection_len(&pat.where_);
                    if acc == 0 {
                        continue;
                    }
                    let cpu = self.scan_misses(rows, g.width_bytes(), acc) * miss
                        + n * acc as f64 * p.cpu_value_seconds;
                    let io = self.io_seq(plan.residence, g.bytes(rows));
                    total += io.max(cpu);
                }
                // Selection-vector materialization (u32 ids).
                if pat.has_filter() {
                    total += self.materialize(selected * 4.0);
                }
                // Phase 2: gather from groups holding select attributes.
                let mut gather_groups = 0usize;
                for g in &plan.groups {
                    let acc = g.attrs.intersection_len(&pat.select);
                    if acc == 0 {
                        continue;
                    }
                    gather_groups += 1;
                    let misses = self.gather_misses(selected, rows, g.width_bytes(), acc);
                    let cpu = misses * miss + selected * acc as f64 * p.cpu_value_seconds;
                    let io = self.io_random(
                        plan.residence,
                        if sel < 1.0 { selected } else { 0.0 },
                        g.bytes(rows) * sel,
                    );
                    total += io.max(cpu);
                }
                total += selected * gather_groups.saturating_sub(1) as f64 * p.cpu_stitch_seconds;
                total += selected * pat.select_ops as f64 * p.cpu_op_seconds;
                total + out_cost
            }
            Strategy::ColumnMajor => {
                // Column-at-a-time processing reads each attribute through
                // whatever group physically stores it; on non-unit-width
                // groups every per-attribute pass pays strided access.
                let width_of = |attr: h2o_storage::AttrId| -> f64 {
                    plan.groups
                        .iter()
                        .find(|g| g.attrs.contains(attr))
                        .map(|g| g.width_bytes())
                        .unwrap_or(VALUE_BYTES as f64)
                };
                let col_width = VALUE_BYTES as f64;
                let mut total = 0.0;
                // Predicates: first predicate scans its column fully; each
                // further predicate gathers candidates and materializes the
                // intermediate candidate column.
                for (i, attr) in pat.where_.iter().enumerate() {
                    let w = width_of(attr);
                    if i == 0 {
                        let cpu = self.scan_misses(rows, w, 1) * miss + n * p.cpu_value_seconds;
                        let io = self.io_seq(plan.residence, n * w);
                        total += io.max(cpu);
                    } else {
                        let misses = self.gather_misses(selected, rows, w, 1);
                        let cpu = misses * miss + selected * p.cpu_value_seconds;
                        total += cpu + self.materialize(selected * col_width);
                    }
                }
                // Source column reads: one gather per select attribute.
                for attr in pat.select.iter() {
                    let misses = self.gather_misses(selected, rows, width_of(attr), 1);
                    total += misses * miss + selected * p.cpu_value_seconds;
                }
                // Intermediate materializations: one fresh column per
                // operator beyond the raw loads (§2.1: "a+b+c results into
                // the materialization of two intermediate columns"), each
                // both written and re-read.
                let intermediates = pat.select_ops.saturating_sub(pat.select.len());
                total += intermediates as f64 * 2.0 * self.materialize(selected * col_width);
                total += selected * pat.select_ops as f64 * p.cpu_op_seconds;
                if plan.residence == Residence::Disk {
                    let bytes: f64 = needed.len() as f64 * n * col_width;
                    total = total.max(bytes / self.params.disk_bandwidth);
                }
                total + out_cost
            }
        }
    }

    /// Estimated cost of one **side** of a hash join executed with `plan`:
    /// the side's scan/filter/gather cost ([`Self::plan_cost`] over the
    /// side pattern — see [`AccessPattern::of_join_side`]) plus the
    /// role-specific hash work per qualifying tuple. The build side pays a
    /// table insert, the payload copy (the pattern's `output_width`
    /// values), and the join-filter build; the probe side pays the
    /// join-filter test plus a table probe. Output materialization of the
    /// *joined* result is already inside `plan_cost`'s output term.
    ///
    /// The asymmetry (insert + copy > probe) is what makes pricing both
    /// orders worthwhile: building on the smaller post-filter side wins,
    /// which is exactly the greedy selectivity-driven ordering the engine
    /// applies — no cardinality statistics, only observed selectivity.
    pub fn join_side_cost(
        &self,
        pat: &AccessPattern,
        plan: &PlanSpec,
        rows: usize,
        role: JoinRole,
    ) -> f64 {
        let selected = rows as f64 * pat.selectivity;
        let hash_ops = match role {
            JoinRole::Build => HASH_INSERT_OPS + BLOOM_BUILD_OPS + pat.output_width as f64,
            JoinRole::Probe => HASH_PROBE_OPS + BLOOM_TEST_OPS,
        };
        self.plan_cost(pat, plan, rows) + selected * hash_ops * self.params.cpu_op_seconds
    }

    /// The best (minimum) join-side cost over all strategies for a fixed
    /// group set — the join counterpart of [`Self::best_cost`].
    pub fn best_join_side_cost(
        &self,
        pat: &AccessPattern,
        groups: &[GroupSpec],
        rows: usize,
        role: JoinRole,
    ) -> f64 {
        Strategy::ALL
            .iter()
            .map(|&strategy| {
                self.join_side_cost(
                    pat,
                    &PlanSpec {
                        strategy,
                        groups: groups.to_vec(),
                        residence: Residence::Memory,
                    },
                    rows,
                    role,
                )
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The best (minimum) plan cost over all strategies for a fixed group
    /// set — what the adaptation mechanism assumes the query processor will
    /// achieve ("H2O evaluates the alternative execution strategies and
    /// selects the most appropriate one", §3.3).
    pub fn best_cost(&self, pat: &AccessPattern, groups: &[GroupSpec], rows: usize) -> f64 {
        Strategy::ALL
            .iter()
            .map(|&strategy| {
                self.plan_cost(
                    pat,
                    &PlanSpec {
                        strategy,
                        groups: groups.to_vec(),
                        residence: Residence::Memory,
                    },
                    rows,
                )
            })
            .fold(f64::INFINITY, f64::min)
    }

    // ------------------------------------------------------------------
    // Transformation cost and Eq. 1
    // ------------------------------------------------------------------

    /// `T(C_{i-1}, C_i)` for materializing one new group: stream-read the
    /// source groups that must be stitched and stream-write the target.
    ///
    /// Reorganization is a pure sequential producer/consumer pass, so its
    /// line transfers overlap with prefetching far better than a query's
    /// (which interleaves predicate work); the `SEQ_OVERLAP` factor
    /// calibrates the miss price accordingly — without it the model
    /// overprices builds ~2× relative to queries and lazy materialization
    /// never amortizes within a realistic window.
    pub fn transform_cost(&self, rows: usize, target: &GroupSpec, sources: &[GroupSpec]) -> f64 {
        const SEQ_OVERLAP: f64 = 0.25;
        let n = rows as f64;
        let read_bytes: f64 = sources
            .iter()
            .filter(|s| s.attrs.intersects(&target.attrs))
            .map(|s| s.bytes(rows))
            .sum();
        let write_bytes = target.bytes(rows);
        let misses = self.params.lines(read_bytes) + self.params.lines(write_bytes);
        misses * self.params.cache_miss_seconds * SEQ_OVERLAP
            + n * target.attrs.len() as f64 * self.params.cpu_value_seconds
    }

    /// Greedy cover of `attrs` by the groups of `partition`; returns
    /// indices into `partition`. (The abstract-configuration counterpart of
    /// the catalog's cover; greedy for the same NP-hardness reason.)
    pub fn cover_abstract(partition: &[GroupSpec], attrs: &AttrSet) -> Option<Vec<usize>> {
        let mut remaining = attrs.clone();
        let mut chosen = Vec::new();
        while !remaining.is_empty() {
            let best = partition
                .iter()
                .enumerate()
                .filter(|(i, g)| !chosen.contains(i) && g.attrs.intersects(&remaining))
                .max_by_key(|(_, g)| g.attrs.intersection_len(&remaining))?;
            remaining.difference_with(&best.1.attrs);
            chosen.push(best.0);
        }
        Some(chosen)
    }

    /// Greedy cover preferring the **least excess width** (narrowest
    /// tailored groups) — the abstract counterpart of the catalog's
    /// `LeastExcessWidth` policy. Essential when configurations overlap: a
    /// full-width group covers everything in one step, but the cheaper
    /// plan usually reads the narrow groups.
    pub fn cover_abstract_min_excess(
        partition: &[GroupSpec],
        attrs: &AttrSet,
    ) -> Option<Vec<usize>> {
        let mut remaining = attrs.clone();
        let mut chosen = Vec::new();
        while !remaining.is_empty() {
            let best = partition
                .iter()
                .enumerate()
                .filter(|(i, g)| !chosen.contains(i) && g.attrs.intersects(&remaining))
                .max_by(|(_, a), (_, b)| {
                    let ca = a.attrs.intersection_len(&remaining);
                    let cb = b.attrs.intersection_len(&remaining);
                    let ea = a.attrs.len() - ca;
                    let eb = b.attrs.len() - cb;
                    // Maximize coverage-per-excess (integer-safe form).
                    (ca * (eb + 1)).cmp(&(cb * (ea + 1))).then(ca.cmp(&cb))
                })?;
            remaining.difference_with(&best.1.attrs);
            chosen.push(best.0);
        }
        Some(chosen)
    }

    /// The cheapest cost over the cover alternatives of `config` for one
    /// pattern: both cover policies are priced with their best strategies
    /// and the minimum wins (mirroring the engine's plan enumeration).
    /// Returns `(cost, chosen cover indices)` or `None` if uncovered.
    pub fn best_cover_cost(
        &self,
        pat: &AccessPattern,
        config: &[GroupSpec],
        rows: usize,
    ) -> Option<(f64, Vec<usize>)> {
        let needed = pat.all_attrs();
        let a = Self::cover_abstract(config, &needed)?;
        let b = Self::cover_abstract_min_excess(config, &needed)?;
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut seen_first: Option<&[usize]> = None;
        for cover in [&a, &b] {
            if seen_first == Some(cover.as_slice()) {
                continue;
            }
            seen_first = Some(cover.as_slice());
            let groups: Vec<GroupSpec> = cover.iter().map(|&i| config[i].clone()).collect();
            let cost = self.best_cost(pat, &groups, rows);
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, cover.clone()));
            }
        }
        best
    }

    /// **Eq. 1**: `cost(W, C_i) = Σ_j q_j(C_i) + T(C_{i-1}, C_i)`.
    ///
    /// Evaluates candidate configuration `config` against the monitoring
    /// window `window`, charging the transformation cost of every group in
    /// `config` that is not already materialized in `current`.
    pub fn configuration_cost(
        &self,
        window: &[AccessPattern],
        config: &[GroupSpec],
        current: &[GroupSpec],
        rows: usize,
    ) -> f64 {
        let mut total = 0.0;
        for pat in window {
            let needed = pat.all_attrs();
            match Self::cover_abstract(config, &needed) {
                Some(idx) => {
                    let groups: Vec<GroupSpec> =
                        idx.into_iter().map(|i| config[i].clone()).collect();
                    total += self.best_cost(pat, &groups, rows);
                }
                None => return f64::INFINITY,
            }
        }
        for g in config {
            let exists = current.iter().any(|c| c.attrs == g.attrs);
            if !exists {
                total += self.transform_cost(rows, g, current);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aset(ids: &[usize]) -> AttrSet {
        ids.iter().copied().collect()
    }

    fn spec(ids: &[usize]) -> GroupSpec {
        GroupSpec::new(aset(ids))
    }

    fn pattern(select: &[usize], where_: &[usize], sel: f64) -> AccessPattern {
        AccessPattern {
            select: aset(select),
            where_: aset(where_),
            selectivity: sel,
            output_width: 1,
            select_ops: select.len().max(1),
            is_aggregate: true,
            is_grouped: false,
        }
    }

    const ROWS: usize = 1_000_000;

    #[test]
    fn narrow_access_prefers_columns_over_row_major() {
        // Query touching 3 of 150 attrs: columnar layouts must cost less
        // than the full row-major group (Figs. 1–2's low-projectivity side).
        let m = CostModel::default();
        let pat = pattern(&[0, 1, 2], &[3], 0.4);
        let columns: Vec<GroupSpec> = (0..150).map(|i| spec(&[i])).collect();
        let needed_cols: Vec<GroupSpec> = [0, 1, 2, 3].iter().map(|&i| spec(&[i])).collect();
        let row: Vec<GroupSpec> = vec![spec(&(0..150).collect::<Vec<_>>())];
        let col_cost = m.best_cost(&pat, &needed_cols, ROWS);
        let row_cost = m.best_cost(&pat, &row, ROWS);
        assert!(
            col_cost < row_cost,
            "columns {col_cost} should beat row-major {row_cost} at low projectivity"
        );
        let _ = columns;
    }

    #[test]
    fn wide_access_prefers_row_major_over_columns() {
        // Query touching 120 of 150 attrs with an expression: row-major
        // fused must cost less than column-at-a-time (the crossover of
        // Figs. 1–2 at high projectivity).
        let m = CostModel::default();
        let attrs: Vec<usize> = (0..120).collect();
        let mut pat = pattern(&attrs, &[120], 0.4);
        pat.select_ops = 239; // left-deep sum over 120 columns
        pat.is_aggregate = false;
        pat.output_width = 1;
        let row = vec![spec(&(0..150).collect::<Vec<_>>())];
        let cols: Vec<GroupSpec> = (0..121).map(|i| spec(&[i])).collect();
        let row_fused = m.plan_cost(
            &pat,
            &PlanSpec {
                strategy: Strategy::FusedVolcano,
                groups: row,
                residence: Residence::Memory,
            },
            ROWS,
        );
        let col_dsm = m.plan_cost(
            &pat,
            &PlanSpec {
                strategy: Strategy::ColumnMajor,
                groups: cols,
                residence: Residence::Memory,
            },
            ROWS,
        );
        assert!(
            row_fused < col_dsm,
            "row fused {row_fused} should beat columnar {col_dsm} at high projectivity"
        );
    }

    #[test]
    fn exact_group_is_at_least_as_good_as_row_major() {
        let m = CostModel::default();
        let pat = pattern(&[0, 1, 2, 3, 4], &[5], 0.1);
        let exact = vec![spec(&[0, 1, 2, 3, 4, 5])];
        let row = vec![spec(&(0..150).collect::<Vec<_>>())];
        assert!(m.best_cost(&pat, &exact, ROWS) < m.best_cost(&pat, &row, ROWS));
    }

    #[test]
    fn selectivity_lowers_selvector_cost() {
        let m = CostModel::default();
        let groups = vec![spec(&[0, 1, 2]), spec(&[3])];
        let plan = |sel: f64| {
            m.plan_cost(
                &pattern(&[0, 1, 2], &[3], sel),
                &PlanSpec {
                    strategy: Strategy::SelVector,
                    groups: groups.clone(),
                    residence: Residence::Memory,
                },
                ROWS,
            )
        };
        assert!(plan(0.01) < plan(0.5));
        assert!(plan(0.5) < plan(1.0));
    }

    #[test]
    fn grouped_queries_cost_more_than_scalar_but_choose_the_same_layouts() {
        let m = CostModel::default();
        let scalar = pattern(&[0, 1], &[2], 0.5);
        let grouped = AccessPattern {
            is_grouped: true,
            is_aggregate: false,
            output_width: 2,
            ..scalar.clone()
        };
        let narrow = vec![spec(&[0, 1, 2])];
        let wide = vec![spec(&(0..150).collect::<Vec<_>>())];
        // The hash probe makes grouped strictly costlier on the same plan...
        assert!(m.best_cost(&grouped, &narrow, ROWS) > m.best_cost(&scalar, &narrow, ROWS));
        // ...but layout preference is unchanged: the charge is
        // strategy/layout-independent.
        assert!(m.best_cost(&grouped, &narrow, ROWS) < m.best_cost(&grouped, &wide, ROWS));
    }

    #[test]
    fn cost_monotone_in_rows() {
        let m = CostModel::default();
        let groups = vec![spec(&[0, 1])];
        let pat = pattern(&[0, 1], &[], 1.0);
        let c1 = m.best_cost(&pat, &groups, 1000);
        let c2 = m.best_cost(&pat, &groups, 10_000);
        assert!(c2 > c1);
        assert!(c1 >= 0.0);
    }

    #[test]
    fn disk_residence_dominated_by_io() {
        let m = CostModel::default();
        let pat = pattern(&[0], &[], 1.0);
        let groups = vec![spec(&[0])];
        let mem = m.plan_cost(
            &pat,
            &PlanSpec {
                strategy: Strategy::FusedVolcano,
                groups: groups.clone(),
                residence: Residence::Memory,
            },
            ROWS,
        );
        let disk = m.plan_cost(
            &pat,
            &PlanSpec {
                strategy: Strategy::FusedVolcano,
                groups,
                residence: Residence::Disk,
            },
            ROWS,
        );
        assert!(disk > mem, "disk {disk} must exceed memory {mem}");
    }

    #[test]
    fn transform_cost_scales_with_width() {
        let m = CostModel::default();
        let sources = vec![spec(&(0..100).collect::<Vec<_>>())];
        let t_small = m.transform_cost(ROWS, &spec(&[0, 1, 2]), &sources);
        let t_big = m.transform_cost(ROWS, &(spec(&(0..50).collect::<Vec<_>>())), &sources);
        assert!(t_big > t_small);
        assert!(t_small > 0.0);
    }

    #[test]
    fn join_build_costs_more_than_probe() {
        // Same side, same plan: the build role pays insert + payload copy,
        // the probe role only the table probe.
        let m = CostModel::default();
        let pat = pattern(&[0, 1], &[2], 0.5);
        let groups = vec![spec(&[0, 1, 2])];
        let plan = PlanSpec {
            strategy: Strategy::SelVector,
            groups,
            residence: Residence::Memory,
        };
        let build = m.join_side_cost(&pat, &plan, ROWS, JoinRole::Build);
        let probe = m.join_side_cost(&pat, &plan, ROWS, JoinRole::Probe);
        assert!(
            build > probe,
            "build {build} must exceed probe {probe} on the same side"
        );
    }

    #[test]
    fn join_ordering_prefers_selective_build_side() {
        // Two sides with very different observed selectivity: pricing both
        // orders must prefer building on the selective (small post-filter)
        // side — the greedy ordering rule the engine applies.
        let m = CostModel::default();
        let selective = pattern(&[0, 1], &[2], 0.05);
        let broad = pattern(&[0, 1], &[2], 0.8);
        let groups = vec![spec(&[0, 1, 2])];
        let order_a = m.best_join_side_cost(&selective, &groups, ROWS, JoinRole::Build)
            + m.best_join_side_cost(&broad, &groups, ROWS, JoinRole::Probe);
        let order_b = m.best_join_side_cost(&broad, &groups, ROWS, JoinRole::Build)
            + m.best_join_side_cost(&selective, &groups, ROWS, JoinRole::Probe);
        assert!(
            order_a < order_b,
            "selective build {order_a} must beat broad build {order_b}"
        );
    }

    #[test]
    fn join_side_cost_prefers_key_payload_group() {
        // A join side reading keys {0} + payload {1} behind a filter on {2}:
        // a tailored key+payload group must beat the wide row-major group —
        // this is the gradient the adviser follows toward join-shaped
        // column groups.
        let m = CostModel::default();
        let pat = pattern(&[0, 1], &[2], 0.2);
        let tailored = vec![spec(&[0, 1, 2])];
        let wide = vec![spec(&(0..150).collect::<Vec<_>>())];
        for role in [JoinRole::Build, JoinRole::Probe] {
            let narrow_cost = m.best_join_side_cost(&pat, &tailored, ROWS, role);
            let wide_cost = m.best_join_side_cost(&pat, &wide, ROWS, role);
            assert!(
                narrow_cost < wide_cost,
                "{role:?}: {narrow_cost} vs {wide_cost}"
            );
        }
    }

    #[test]
    fn cover_abstract_finds_minimal_cover() {
        let partition = vec![spec(&[0, 1]), spec(&[2, 3]), spec(&[0, 1, 2, 3])];
        let cover = CostModel::cover_abstract(&partition, &aset(&[0, 3])).unwrap();
        assert_eq!(cover, vec![2]);
        assert!(CostModel::cover_abstract(&partition, &aset(&[9])).is_none());
    }

    /// A filtered arithmetic-expression query over {0,1,2} — the workload
    /// shape where the paper shows column groups clearly beat pure columns
    /// (Figs. 10(c)/(f): no intermediate results in the fused plan).
    fn expr_pattern() -> AccessPattern {
        AccessPattern {
            select: aset(&[0, 1, 2]),
            where_: aset(&[3]),
            selectivity: 0.4,
            output_width: 1,
            select_ops: 5, // a0 + a1 + a2 as a tree
            is_aggregate: false,
            is_grouped: false,
        }
    }

    #[test]
    fn configuration_cost_prefers_matching_partition() {
        // Window: every query computes a filtered expression over {0,1,2}.
        // A configuration with a {0,1,2,3} group must beat all-columns even
        // after paying its transformation cost, once the window is long
        // enough to amortize the build (~30 queries at these parameters —
        // the same amortization threshold the paper's lazy creation is
        // designed around).
        let m = CostModel::default();
        let window: Vec<AccessPattern> = (0..40).map(|_| expr_pattern()).collect();
        let columns: Vec<GroupSpec> = (0..10).map(|i| spec(&[i])).collect();
        let grouped: Vec<GroupSpec> = {
            let mut v = vec![spec(&[0, 1, 2, 3])];
            v.extend((4..10).map(|i| spec(&[i])));
            v
        };
        let cost_cols = m.configuration_cost(&window, &columns, &columns, ROWS);
        let cost_grouped = m.configuration_cost(&window, &grouped, &columns, ROWS);
        assert!(
            cost_grouped < cost_cols,
            "grouped {cost_grouped} should beat columnar {cost_cols}"
        );
    }

    #[test]
    fn min_excess_cover_prefers_narrow_groups() {
        // Wide group covers everything; narrow groups cover exactly.
        let partition = vec![
            spec(&(0..30).collect::<Vec<_>>()),
            spec(&[0, 1]),
            spec(&[2]),
        ];
        let max_cover = CostModel::cover_abstract(&partition, &aset(&[0, 1, 2])).unwrap();
        assert_eq!(max_cover, vec![0], "max-cover takes the wide group");
        let min_excess =
            CostModel::cover_abstract_min_excess(&partition, &aset(&[0, 1, 2])).unwrap();
        assert_eq!(min_excess, vec![1, 2], "min-excess takes the narrow groups");
    }

    #[test]
    fn best_cover_cost_picks_the_cheaper_alternative() {
        // A narrow-attribute query against a config holding both a wide
        // group and tailored narrow groups: the best cover must not be
        // forced onto the wide group.
        let m = CostModel::default();
        let config = vec![
            spec(&(0..150).collect::<Vec<_>>()),
            spec(&[0, 1, 2]),
            spec(&[3]),
        ];
        let pat = pattern(&[0, 1, 2], &[3], 0.3);
        let (cost, cover) = m.best_cover_cost(&pat, &config, ROWS).unwrap();
        assert!(
            cover.contains(&1),
            "expected the tailored group in {cover:?}"
        );
        let wide_only = m.best_cost(&pat, &config[..1], ROWS);
        assert!(cost < wide_only);
        // Uncoverable pattern yields None.
        assert!(m
            .best_cover_cost(&pattern(&[999], &[], 1.0), &config, ROWS)
            .is_none());
    }

    #[test]
    fn configuration_cost_infinite_when_uncovered() {
        let m = CostModel::default();
        let window = vec![pattern(&[5], &[], 1.0)];
        let config = vec![spec(&[0])];
        assert!(m
            .configuration_cost(&window, &config, &config, ROWS)
            .is_infinite());
    }

    #[test]
    fn transformation_cost_discourages_one_off_layouts() {
        // One query for {0,1,2} in a window of unrelated queries: building
        // the {0,1,2} group should NOT pay off for a single use at small
        // row counts... but the paper's point is amortization: with many
        // repetitions it must pay off. Check the crossover exists.
        let m = CostModel::default();
        let columns: Vec<GroupSpec> = (0..10).map(|i| spec(&[i])).collect();
        let grouped: Vec<GroupSpec> = {
            let mut v = vec![spec(&[0, 1, 2, 3])];
            v.extend((4..10).map(|i| spec(&[i])));
            v
        };
        let pat = expr_pattern();
        let once = vec![pat.clone()];
        let many: Vec<AccessPattern> = (0..100).map(|_| pat.clone()).collect();
        let delta_once = m.configuration_cost(&once, &grouped, &columns, ROWS)
            - m.configuration_cost(&once, &columns, &columns, ROWS);
        let delta_many = m.configuration_cost(&many, &grouped, &columns, ROWS)
            - m.configuration_cost(&many, &columns, &columns, ROWS);
        assert!(
            delta_many < delta_once,
            "amortization must improve the grouped configuration"
        );
        assert!(delta_many < 0.0, "100 uses must amortize the build cost");
    }
}
