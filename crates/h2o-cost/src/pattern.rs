//! Query access patterns — what the monitor records and the model costs.
//!
//! An [`AccessPattern`] is the layout-relevant abstraction of a query
//! (paper §3.2): *which* attributes the select clause reads, *which* the
//! where clause reads, and how selective the filter is. The adaptation
//! mechanism never looks at predicates or expressions, only at patterns.

use h2o_expr::{JoinQuery, Query, Side};
use h2o_storage::AttrSet;

/// The layout-relevant footprint of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPattern {
    /// Attributes referenced in the select clause.
    pub select: AttrSet,
    /// Attributes referenced in the where clause.
    pub where_: AttrSet,
    /// Estimated (or observed) selectivity in `[0, 1]`; `1.0` when there is
    /// no where clause.
    pub selectivity: f64,
    /// Values produced per output row (for result materialization costs).
    pub output_width: usize,
    /// Total expression opcodes in the select clause (compute-cost term).
    pub select_ops: usize,
    /// Whether the query aggregates to a **single** output row rather than
    /// projecting one row per qualifying tuple.
    pub is_aggregate: bool,
    /// Whether the query is a grouped aggregation: output cardinality
    /// scales with the number of distinct key vectors (bounded by the
    /// qualifying-tuple count), and every qualifying tuple pays a hash
    /// probe. Group-key attributes are part of [`Self::select`], so the
    /// adaptation mechanism sees key columns as hot select-clause
    /// attributes.
    pub is_grouped: bool,
}

impl AccessPattern {
    /// Derives the pattern of `query`, with `selectivity` supplied by the
    /// caller (the engine passes observed selectivity from execution
    /// feedback; a priori estimates default to 1.0 for no filter).
    pub fn of(query: &Query, selectivity: f64) -> AccessPattern {
        AccessPattern {
            select: query.select_attrs(),
            where_: query.where_attrs(),
            selectivity: selectivity.clamp(0.0, 1.0),
            output_width: query.output_width(),
            select_ops: query.select_node_count(),
            is_aggregate: query.is_aggregate(),
            is_grouped: query.is_grouped(),
        }
    }

    /// Derives the pattern of one **side** of a join: the side's join keys
    /// and payload are its select clause (they are gathered for the hash
    /// table on the build side and for tuple stitching on the probe side),
    /// its residual filter is the where clause. This is both what the
    /// model prices ([`crate::CostModel::join_side_cost`]) and what the
    /// engine feeds the monitoring window — so the adviser sees join
    /// key+payload column groups as hot select-clause attributes, exactly
    /// as it sees group-by keys.
    pub fn of_join_side(query: &JoinQuery, side: Side, selectivity: f64) -> AccessPattern {
        let mut select = query.payload_attrs(side);
        for k in query.key_attrs(side) {
            select.insert(k);
        }
        let width = select.len();
        AccessPattern {
            select,
            where_: query.filter(side).attrs(),
            selectivity: selectivity.clamp(0.0, 1.0),
            // One materialized value per key/payload attribute of every
            // qualifying tuple (the hash-table entry or stitched half).
            output_width: width,
            select_ops: width,
            is_aggregate: false,
            is_grouped: false,
        }
    }

    /// All attributes the query touches.
    pub fn all_attrs(&self) -> AttrSet {
        self.select.union(&self.where_)
    }

    /// Whether the query has a where clause.
    pub fn has_filter(&self) -> bool {
        !self.where_.is_empty()
    }

    /// Jaccard similarity of the attribute footprints of two patterns —
    /// used by workload-shift detection ("it examines whether the input
    /// query access pattern is new or if it has been observed", §3.2).
    pub fn similarity(&self, other: &AccessPattern) -> f64 {
        let a = self.all_attrs();
        let b = other.all_attrs();
        let inter = a.intersection_len(&b);
        let union = a.len() + b.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2o_expr::{Aggregate, Conjunction, Expr, Predicate};
    use h2o_storage::AttrId;

    #[test]
    fn pattern_of_query() {
        let q = Query::project(
            [Expr::sum_of([AttrId(0), AttrId(1)])],
            Conjunction::of([Predicate::lt(5u32, 3)]),
        )
        .unwrap();
        let p = AccessPattern::of(&q, 0.25);
        assert_eq!(p.select.to_vec(), vec![AttrId(0), AttrId(1)]);
        assert_eq!(p.where_.to_vec(), vec![AttrId(5)]);
        assert!((p.selectivity - 0.25).abs() < 1e-12);
        assert_eq!(p.output_width, 1);
        assert_eq!(p.select_ops, 3);
        assert!(!p.is_aggregate);
        assert!(p.has_filter());
        assert_eq!(p.all_attrs().len(), 3);
    }

    #[test]
    fn grouped_pattern_marks_keys_hot() {
        let q = Query::grouped(
            [Expr::col(7u32)],
            [Aggregate::sum(Expr::col(1u32))],
            Conjunction::of([Predicate::lt(5u32, 3)]),
        )
        .unwrap();
        let p = AccessPattern::of(&q, 0.5);
        assert!(p.is_grouped);
        assert!(!p.is_aggregate, "grouped output is not a single row");
        // The key column is a select-clause attribute: the adviser sees it.
        assert!(p.select.contains(h2o_storage::AttrId(7)));
        assert_eq!(p.output_width, 2);
    }

    #[test]
    fn join_side_pattern_marks_keys_and_payload_hot() {
        let photo = h2o_storage::Schema::typed([
            ("objID", h2o_storage::LogicalType::I64),
            ("ra", h2o_storage::LogicalType::F64),
            ("flags", h2o_storage::LogicalType::I64),
        ])
        .into_shared();
        let spec = h2o_storage::Schema::typed([
            ("bestObjID", h2o_storage::LogicalType::I64),
            ("z", h2o_storage::LogicalType::F64),
        ])
        .into_shared();
        let b = Query::join(("photo", photo), ("spec", spec));
        let ra = b.col("ra").unwrap();
        let z = b.col("z").unwrap();
        let q = b
            .on("objID", "bestObjID")
            .unwrap()
            .filter_left(Conjunction::of([Predicate::lt(2u32, 4)]))
            .project([ra, z])
            .unwrap();
        let left = AccessPattern::of_join_side(&q, Side::Left, 0.3);
        // Key {0} and payload {1} are the select footprint; filter {2} is
        // the where footprint — the adviser sees key+payload as one hot
        // group.
        assert_eq!(left.select.to_vec(), vec![AttrId(0), AttrId(1)]);
        assert_eq!(left.where_.to_vec(), vec![AttrId(2)]);
        assert_eq!(left.output_width, 2);
        assert!(!left.is_aggregate && !left.is_grouped);
        assert!((left.selectivity - 0.3).abs() < 1e-12);
        let right = AccessPattern::of_join_side(&q, Side::Right, 1.0);
        assert_eq!(right.select.to_vec(), vec![AttrId(0), AttrId(1)]);
        assert!(right.where_.is_empty());
    }

    #[test]
    fn selectivity_clamped() {
        let q = Query::aggregate([Aggregate::count()], Conjunction::always()).unwrap();
        assert_eq!(AccessPattern::of(&q, 7.0).selectivity, 1.0);
        assert_eq!(AccessPattern::of(&q, -1.0).selectivity, 0.0);
        assert!(AccessPattern::of(&q, 1.0).is_aggregate);
    }

    #[test]
    fn similarity_metric() {
        let qa = Query::project([Expr::col(0u32), Expr::col(1u32)], Conjunction::always()).unwrap();
        let qb = Query::project([Expr::col(1u32), Expr::col(2u32)], Conjunction::always()).unwrap();
        let pa = AccessPattern::of(&qa, 1.0);
        let pb = AccessPattern::of(&qb, 1.0);
        // {0,1} vs {1,2}: intersection 1, union 3.
        assert!((pa.similarity(&pb) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pa.similarity(&pa), 1.0);
    }
}
