//! Hardware parameters for the cost model.

/// Machine characteristics the cost model is parameterized on. Defaults are
/// order-of-magnitude values for a commodity x86 server; only *ratios*
/// matter for plan and configuration ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareParams {
    /// Cache line size in bytes.
    pub cache_line_bytes: f64,
    /// Cost of one last-level cache miss, in seconds (~memory latency).
    pub cache_miss_seconds: f64,
    /// Sustained sequential memory bandwidth, bytes/second. Used for
    /// intermediate-result materialization (write) costs.
    pub memory_bandwidth: f64,
    /// Per-value CPU work for touching/processing one attribute value, in
    /// seconds (branch + arithmetic in a compiled kernel).
    pub cpu_value_seconds: f64,
    /// Per-tuple cost of reading from one *additional* group in the same
    /// pass (tuple stitching across groups: extra address streams defeat
    /// the prefetcher and add pointer arithmetic), in seconds.
    pub cpu_stitch_seconds: f64,
    /// Per-operator CPU work for one expression opcode, in seconds.
    pub cpu_op_seconds: f64,
    /// Sequential disk bandwidth, bytes/second (only used for disk-resident
    /// layouts; the paper's experiments — and this reproduction's — run
    /// hot).
    pub disk_bandwidth: f64,
    /// Per-random-I/O latency, seconds.
    pub disk_seek_seconds: f64,
}

impl Default for HardwareParams {
    fn default() -> Self {
        HardwareParams {
            cache_line_bytes: 64.0,
            cache_miss_seconds: 80e-9,
            memory_bandwidth: 10e9,
            cpu_value_seconds: 1.2e-9,
            cpu_stitch_seconds: 2.5e-9,
            cpu_op_seconds: 0.8e-9,
            disk_bandwidth: 500e6,
            disk_seek_seconds: 5e-3,
        }
    }
}

impl HardwareParams {
    /// Number of cache lines covering `bytes` of contiguous data.
    pub fn lines(&self, bytes: f64) -> f64 {
        (bytes / self.cache_line_bytes).ceil().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let p = HardwareParams::default();
        assert!(p.cache_line_bytes > 0.0);
        assert!(p.cache_miss_seconds > 0.0);
        // Memory must be faster than disk.
        assert!(p.memory_bandwidth > p.disk_bandwidth);
    }

    #[test]
    fn lines_rounds_up() {
        let p = HardwareParams::default();
        assert_eq!(p.lines(1.0), 1.0);
        assert_eq!(p.lines(64.0), 1.0);
        assert_eq!(p.lines(65.0), 2.0);
        assert_eq!(p.lines(0.0), 0.0);
    }
}
