//! # h2o-cost — the H2O cost model
//!
//! Implements the paper's two cost formulas (SIGMOD 2014 §3.2, §3.5):
//!
//! * **Eq. 2 — query cost**: `q(L) = Σ_i max(cost_IO_i, cost_CPU_i)` over
//!   the layouts `L` a plan reads, assuming disk I/O and CPU overlap. The
//!   CPU term is estimated from **data cache misses** ("they can provide a
//!   good indication regarding the expected execution cost of query plans"),
//!   following the HYRISE-style cache-line model the paper cites, plus
//!   per-value compute and intermediate-result materialization terms.
//! * **Eq. 1 — configuration cost**:
//!   `cost(W, C_i) = Σ_j q_j(C_i) + T(C_{i-1}, C_i)` — the cost of a whole
//!   monitoring window under a candidate layout configuration, including
//!   the transformation cost `T` of materializing the new layouts. This is
//!   the objective the adaptation mechanism minimizes.
//!
//! The model is deliberately *relative*: its job is to rank alternatives
//! (plans in the query processor, candidate configurations in the
//! adaptation mechanism), not to predict wall-clock seconds. Parameters are
//! in [`HardwareParams`] and can be calibrated.

pub mod model;
pub mod params;
pub mod pattern;

pub use model::{CostModel, GroupSpec, JoinRole, PlanSpec, Residence};
pub use params::HardwareParams;
pub use pattern::AccessPattern;
