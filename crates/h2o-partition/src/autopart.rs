//! The AutoPart offline vertical-partitioning algorithm.
//!
//! Follows the structure of Papadomanolakis & Ailamaki (SSDBM 2004):
//!
//! 1. **Categorization / primary partitions** — attributes with identical
//!    *query-access vectors* (the set of workload queries that touch them)
//!    can never benefit from being separated, so they form the atomic
//!    fragments of the search.
//! 2. **Composite partitions by iterative merging** — pairs of fragments
//!    are merged while the estimated workload cost improves, favoring
//!    pairs that are frequently co-accessed.
//!
//! This is the offline advisor the paper benchmarks H2O against in Fig. 8:
//! it sees the whole workload in advance and emits one static
//! fragmentation. It cannot react if the workload later drifts — which is
//! precisely the gap H2O's online adaptation closes.

use crate::partition_cost;
use h2o_cost::{AccessPattern, CostModel};
use h2o_storage::AttrSet;
use std::collections::HashMap;

/// Tuning knobs for AutoPart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoPartConfig {
    /// Safety bound on merge iterations.
    pub max_rounds: usize,
}

impl Default for AutoPartConfig {
    fn default() -> Self {
        AutoPartConfig { max_rounds: 64 }
    }
}

/// The AutoPart offline partitioner.
#[derive(Debug, Clone, Default)]
pub struct AutoPart {
    model: CostModel,
    config: AutoPartConfig,
}

impl AutoPart {
    /// Creates a partitioner over the given cost model.
    pub fn new(model: CostModel, config: AutoPartConfig) -> Self {
        AutoPart { model, config }
    }

    /// Phase 1: primary partitions — equivalence classes of attributes
    /// under "accessed by exactly the same queries". Attributes untouched
    /// by the workload form one leftover fragment.
    pub fn primary_partitions(workload: &[AccessPattern], n_attrs: usize) -> Vec<AttrSet> {
        // Access vector per attribute: bitmask of queries touching it.
        let mut vectors: Vec<Vec<u64>> = vec![vec![0; workload.len().div_ceil(64)]; n_attrs];
        for (qi, pat) in workload.iter().enumerate() {
            for a in pat.all_attrs().iter() {
                if a.index() < n_attrs {
                    vectors[a.index()][qi / 64] |= 1 << (qi % 64);
                }
            }
        }
        let mut classes: HashMap<Vec<u64>, AttrSet> = HashMap::new();
        for (attr, vec) in vectors.into_iter().enumerate() {
            classes.entry(vec).or_default().insert(attr.into());
        }
        let mut parts: Vec<AttrSet> = classes.into_values().collect();
        // Deterministic order: by smallest member.
        parts.sort_by_key(|p| p.first().map(|a| a.index()).unwrap_or(usize::MAX));
        parts.retain(|p| !p.is_empty());
        parts
    }

    /// Runs the full algorithm: primary partitions, then cost-guided
    /// pairwise merging until no merge improves the workload cost.
    /// Returns a complete fragmentation of `0..n_attrs`.
    pub fn partition(
        &self,
        workload: &[AccessPattern],
        n_attrs: usize,
        rows: usize,
    ) -> Vec<AttrSet> {
        if n_attrs == 0 {
            return Vec::new();
        }
        let mut parts = Self::primary_partitions(workload, n_attrs);
        if workload.is_empty() {
            return parts;
        }
        let mut best = partition_cost(&self.model, workload, &parts, rows);
        for _ in 0..self.config.max_rounds {
            let mut best_merge: Option<(usize, usize, f64)> = None;
            for i in 0..parts.len() {
                for j in (i + 1)..parts.len() {
                    let mut trial: Vec<AttrSet> = Vec::with_capacity(parts.len() - 1);
                    for (k, p) in parts.iter().enumerate() {
                        if k != i && k != j {
                            trial.push(p.clone());
                        }
                    }
                    trial.push(parts[i].union(&parts[j]));
                    let cost = partition_cost(&self.model, workload, &trial, rows);
                    if cost < best && best_merge.is_none_or(|(_, _, c)| cost < c) {
                        best_merge = Some((i, j, cost));
                    }
                }
            }
            let Some((i, j, cost)) = best_merge else {
                break;
            };
            let merged = parts[i].union(&parts[j]);
            parts = parts
                .into_iter()
                .enumerate()
                .filter(|(k, _)| *k != i && *k != j)
                .map(|(_, p)| p)
                .collect();
            parts.push(merged);
            best = cost;
        }
        parts
    }

    /// The workload cost of a fragmentation under this partitioner's model
    /// (exposed for benchmarking and tests).
    pub fn cost(&self, workload: &[AccessPattern], partition: &[AttrSet], rows: usize) -> f64 {
        partition_cost(&self.model, workload, partition, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_valid_partition;

    fn aset(ids: &[usize]) -> AttrSet {
        ids.iter().copied().collect()
    }

    fn pattern(select: &[usize], where_: &[usize], sel: f64) -> AccessPattern {
        AccessPattern {
            select: aset(select),
            where_: aset(where_),
            selectivity: sel,
            output_width: 1,
            select_ops: (2 * select.len()).saturating_sub(1).max(1),
            is_aggregate: false,
            is_grouped: false,
        }
    }

    const ROWS: usize = 500_000;

    #[test]
    fn primary_partitions_group_identical_access_vectors() {
        // Queries: q0 touches {0,1}, q1 touches {0,1,2}. Attr 3 untouched.
        let w = vec![pattern(&[0, 1], &[], 1.0), pattern(&[0, 1, 2], &[], 1.0)];
        let parts = AutoPart::primary_partitions(&w, 4);
        // {0,1} identical vectors; {2} its own; {3} untouched.
        assert_eq!(parts.len(), 3);
        assert!(parts.contains(&aset(&[0, 1])));
        assert!(parts.contains(&aset(&[2])));
        assert!(parts.contains(&aset(&[3])));
        assert!(is_valid_partition(&parts, 4));
    }

    #[test]
    fn partition_is_always_valid() {
        let ap = AutoPart::default();
        let w = vec![
            pattern(&[0, 1, 2], &[7], 0.3),
            pattern(&[2, 3], &[7], 0.3),
            pattern(&[5], &[6], 0.01),
        ];
        let parts = ap.partition(&w, 10, ROWS);
        assert!(is_valid_partition(&parts, 10), "{parts:?}");
    }

    #[test]
    fn repeated_coaccess_merges_fragments() {
        // Heavy workload always touching {0,1,2,3} together (select+where
        // seeds differ so primary partitions would separate them only if
        // access vectors differ — make two query shapes so {0,1} and {2,3}
        // start as distinct primaries, then merging must unite them).
        let mut w = Vec::new();
        for _ in 0..10 {
            w.push(pattern(&[0, 1], &[2, 3], 0.2));
            w.push(pattern(&[0, 1, 2, 3], &[], 1.0));
        }
        let ap = AutoPart::default();
        let parts = ap.partition(&w, 8, ROWS);
        assert!(is_valid_partition(&parts, 8));
        let containing0 = parts.iter().find(|p| p.contains(0usize.into())).unwrap();
        assert!(
            aset(&[0, 1]).is_subset(containing0),
            "co-accessed attrs should share a fragment: {parts:?}"
        );
    }

    #[test]
    fn merging_never_worsens_cost() {
        let ap = AutoPart::default();
        let w = vec![pattern(&[0, 1, 2], &[3], 0.4), pattern(&[4, 5], &[3], 0.4)];
        let primaries = AutoPart::primary_partitions(&w, 8);
        let final_parts = ap.partition(&w, 8, ROWS);
        let c_primary = ap.cost(&w, &primaries, ROWS);
        let c_final = ap.cost(&w, &final_parts, ROWS);
        assert!(c_final <= c_primary + 1e-12);
    }

    #[test]
    fn empty_workload_yields_single_fragment_classes() {
        let parts = AutoPart::primary_partitions(&[], 5);
        // All attributes share the empty access vector.
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], AttrSet::all(5));
        let ap = AutoPart::default();
        assert!(is_valid_partition(&ap.partition(&[], 5, ROWS), 5));
    }

    #[test]
    fn zero_attrs() {
        let ap = AutoPart::default();
        assert!(ap.partition(&[], 0, ROWS).is_empty());
    }

    #[test]
    fn large_workload_over_64_queries() {
        // Exercises the multi-word access-vector path.
        let w: Vec<AccessPattern> = (0..130)
            .map(|i| pattern(&[i % 4], &[4 + (i % 2)], 0.5))
            .collect();
        let parts = AutoPart::primary_partitions(&w, 8);
        assert!(is_valid_partition(&parts, 8));
        // Attrs 0..3 each have distinct vectors; 6,7 untouched share one.
        assert!(parts.contains(&aset(&[6, 7])));
    }
}
