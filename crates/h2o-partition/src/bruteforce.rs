//! Exact optimal vertical partitioning by exhaustive enumeration.
//!
//! Enumerates every set partition of the attributes (restricted-growth
//! strings, Bell-number many — the paper's "a table with 10 attributes can
//! be vertically partitioned into 115975 different partitions" is exactly
//! B(10)) and returns the cheapest under the cost model. Feasible to about
//! 10–12 attributes; used as the oracle that validates the heuristics.

use crate::partition_cost;
use h2o_cost::{AccessPattern, CostModel};
use h2o_storage::AttrSet;

/// Hard cap: B(12) ≈ 4.2M partitions is the most we are willing to walk.
const MAX_ATTRS: usize = 12;

/// Finds the exact optimal fragmentation of `0..n_attrs` for `workload`.
/// Returns `(partition, cost)`.
///
/// # Panics
///
/// Panics if `n_attrs > 12` — use [`AutoPart`](crate::AutoPart) beyond
/// oracle scale.
pub fn brute_force(
    model: &CostModel,
    workload: &[AccessPattern],
    n_attrs: usize,
    rows: usize,
) -> (Vec<AttrSet>, f64) {
    assert!(
        n_attrs <= MAX_ATTRS,
        "brute force is an oracle for <= {MAX_ATTRS} attributes"
    );
    if n_attrs == 0 {
        return (Vec::new(), 0.0);
    }

    // Restricted-growth-string enumeration: rgs[i] = block of attribute i,
    // with rgs[i] <= 1 + max(rgs[..i]).
    let mut rgs = vec![0usize; n_attrs];
    let mut best: Option<(Vec<AttrSet>, f64)> = None;

    loop {
        // Materialize this partition.
        let blocks = rgs.iter().copied().max().unwrap_or(0) + 1;
        let mut parts: Vec<AttrSet> = vec![AttrSet::new(); blocks];
        for (attr, &b) in rgs.iter().enumerate() {
            parts[b].insert(attr.into());
        }
        let cost = partition_cost(model, workload, &parts, rows);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((parts, cost));
        }

        // Advance the restricted growth string.
        let mut i = n_attrs - 1;
        loop {
            let max_prefix = rgs[..i].iter().copied().max().map_or(0, |m| m + 1);
            if i == 0 {
                // rgs[0] is always 0; enumeration complete.
                return best.expect("at least one partition");
            }
            if rgs[i] < max_prefix {
                rgs[i] += 1;
                for slot in rgs.iter_mut().skip(i + 1) {
                    *slot = 0;
                }
                break;
            }
            i -= 1;
        }
    }
}

/// The number of set partitions of `n` elements (Bell number), computed
/// with the Bell triangle. Used in tests to confirm full enumeration.
pub fn bell_number(n: usize) -> u64 {
    if n == 0 {
        return 1;
    }
    let mut row = vec![1u64];
    for _ in 1..n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().unwrap());
        for &x in &row {
            next.push(next.last().unwrap() + x);
        }
        row = next;
    }
    *row.last().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_valid_partition, AutoPart};

    fn aset(ids: &[usize]) -> AttrSet {
        ids.iter().copied().collect()
    }

    fn pattern(select: &[usize], where_: &[usize], sel: f64) -> AccessPattern {
        AccessPattern {
            select: aset(select),
            where_: aset(where_),
            selectivity: sel,
            output_width: 1,
            select_ops: (2 * select.len()).saturating_sub(1).max(1),
            is_aggregate: false,
            is_grouped: false,
        }
    }

    #[test]
    fn bell_numbers_match_oeis() {
        // OEIS A000110 — includes the paper's 115975 for n = 10.
        let expect = [1u64, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975];
        for (n, &want) in expect.iter().enumerate() {
            assert_eq!(bell_number(n), want, "B({n})");
        }
    }

    #[test]
    fn enumeration_visits_every_partition() {
        // Count partitions by running brute force with a cost function that
        // can't distinguish them... instead, instrument indirectly: verify
        // optimal over 4 attrs beats AutoPart never (i.e., is <=) and is
        // valid; the count check uses a custom walk below.
        let mut count = 0u64;
        // Re-run the same RGS walk to count.
        let n = 5;
        let mut rgs = vec![0usize; n];
        'outer: loop {
            count += 1;
            let mut i = n - 1;
            loop {
                let max_prefix = rgs[..i].iter().copied().max().map_or(0, |m| m + 1);
                if i == 0 {
                    break 'outer;
                }
                if rgs[i] < max_prefix {
                    rgs[i] += 1;
                    for slot in rgs.iter_mut().skip(i + 1) {
                        *slot = 0;
                    }
                    break;
                }
                i -= 1;
            }
        }
        assert_eq!(count, bell_number(5));
    }

    #[test]
    fn oracle_result_is_valid_and_not_worse_than_autopart() {
        let model = CostModel::default();
        let w = vec![
            pattern(&[0, 1], &[2], 0.3),
            pattern(&[0, 1], &[2], 0.3),
            pattern(&[3], &[4], 0.01),
            pattern(&[0, 1, 3], &[2], 0.5),
        ];
        let rows = 200_000;
        let (opt, opt_cost) = brute_force(&model, &w, 6, rows);
        assert!(is_valid_partition(&opt, 6));
        let ap = AutoPart::default();
        let heuristic = ap.partition(&w, 6, rows);
        let h_cost = ap.cost(&w, &heuristic, rows);
        assert!(
            opt_cost <= h_cost + 1e-12,
            "oracle {opt_cost} must not exceed heuristic {h_cost}"
        );
    }

    #[test]
    fn oracle_groups_coaccessed_attrs() {
        let model = CostModel::default();
        // Strong signal: {0,1,2} always together with a filter on 3.
        let w: Vec<AccessPattern> = (0..8).map(|_| pattern(&[0, 1, 2], &[3], 0.2)).collect();
        let (opt, _) = brute_force(&model, &w, 5, 500_000);
        let f0 = opt.iter().find(|p| p.contains(0usize.into())).unwrap();
        assert!(
            aset(&[0, 1, 2]).is_subset(f0),
            "optimal must co-locate the hot cluster: {opt:?}"
        );
    }

    #[test]
    fn zero_and_one_attrs() {
        let model = CostModel::default();
        let (p0, c0) = brute_force(&model, &[], 0, 100);
        assert!(p0.is_empty());
        assert_eq!(c0, 0.0);
        let (p1, _) = brute_force(&model, &[], 1, 100);
        assert_eq!(p1, vec![aset(&[0])]);
    }

    #[test]
    #[should_panic(expected = "oracle")]
    fn too_many_attrs_panics() {
        brute_force(&CostModel::default(), &[], 13, 100);
    }
}
