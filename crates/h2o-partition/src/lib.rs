//! # h2o-partition — offline vertical partitioning
//!
//! The offline baselines H2O is compared against and builds on:
//!
//! * [`AutoPart`] — a reimplementation of the AutoPart offline vertical
//!   partitioning algorithm (Papadomanolakis & Ailamaki, SSDBM 2004), the
//!   tool the paper uses as the static-advisor baseline in Fig. 8 and the
//!   algorithm H2O "extends … to work for dynamic scenarios" (§5). Given
//!   the *whole* workload up front it produces a single fragmentation of
//!   the relation: category-based primary partitions (attributes with
//!   identical query-access vectors) refined by cost-guided pairwise
//!   merging.
//! * [`brute_force`] — exact optimal partitioning by exhaustive enumeration
//!   of set partitions (Bell-number search, feasible to ~10 attributes),
//!   used as a test oracle for the heuristics. The paper notes the exact
//!   problem is NP-hard and that a 10-attribute table already has 115 975
//!   partitions — which is exactly what this module enumerates.
//!
//! Both optimize the same objective the adaptive engine uses: total
//! workload cost under the `h2o-cost` model (Eq. 1 without the
//! transformation term — offline tools build their layout before the
//! workload runs, and Fig. 8 charges that creation time separately).

pub mod autopart;
pub mod bruteforce;

pub use autopart::{AutoPart, AutoPartConfig};
pub use bruteforce::brute_force;

use h2o_cost::{AccessPattern, CostModel, GroupSpec};
use h2o_storage::AttrSet;

/// Total workload cost of a complete partition: each query is priced with
/// its best strategy over the fragments that cover it.
pub fn partition_cost(
    model: &CostModel,
    workload: &[AccessPattern],
    partition: &[AttrSet],
    rows: usize,
) -> f64 {
    let specs: Vec<GroupSpec> = partition
        .iter()
        .map(|a| GroupSpec::new(a.clone()))
        .collect();
    let mut total = 0.0;
    for pat in workload {
        let needed = pat.all_attrs();
        match CostModel::cover_abstract(&specs, &needed) {
            Some(cover) => {
                let groups: Vec<GroupSpec> = cover.into_iter().map(|i| specs[i].clone()).collect();
                total += model.best_cost(pat, &groups, rows);
            }
            None => return f64::INFINITY,
        }
    }
    total
}

/// Checks that `partition` is a valid fragmentation of `0..n_attrs`: every
/// attribute in exactly one non-empty fragment.
pub fn is_valid_partition(partition: &[AttrSet], n_attrs: usize) -> bool {
    let mut seen = AttrSet::new();
    for frag in partition {
        if frag.is_empty() || frag.intersects(&seen) {
            return false;
        }
        seen.union_with(frag);
    }
    seen == AttrSet::all(n_attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aset(ids: &[usize]) -> AttrSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn valid_partition_checks() {
        assert!(is_valid_partition(&[aset(&[0, 1]), aset(&[2])], 3));
        assert!(!is_valid_partition(&[aset(&[0, 1])], 3), "misses attr 2");
        assert!(
            !is_valid_partition(&[aset(&[0, 1]), aset(&[1, 2])], 3),
            "overlap"
        );
        assert!(
            !is_valid_partition(&[aset(&[0, 1, 2]), AttrSet::new()], 3),
            "empty fragment"
        );
        assert!(is_valid_partition(&[], 0));
    }

    #[test]
    fn partition_cost_infinite_when_uncovered() {
        let model = CostModel::default();
        let pat = AccessPattern {
            select: aset(&[5]),
            where_: AttrSet::new(),
            selectivity: 1.0,
            output_width: 1,
            select_ops: 1,
            is_aggregate: true,
            is_grouped: false,
        };
        let cost = partition_cost(&model, &[pat], &[aset(&[0])], 1000);
        assert!(cost.is_infinite());
    }
}
