//! # H2O: a hands-free adaptive store — Rust reproduction
//!
//! A from-scratch implementation of **H2O** (Alagiannis, Idreos, Ailamaki —
//! SIGMOD 2014): an in-memory analytical engine that makes *no fixed
//! decision* about physical data layout. Row-major, column-major and
//! column-group layouts coexist; the engine monitors the query stream and
//! — driven by an affinity/cost model — creates new layouts **while
//! answering queries**, generating specialized access operators per
//! (layout, query-shape) combination.
//!
//! ```
//! use h2o::prelude::*;
//!
//! // A 20-attribute relation, initially column-major.
//! let schema = Schema::with_width(20).into_shared();
//! let columns = h2o::workload::gen_columns(20, 10_000, 42);
//! let relation = Relation::columnar(schema, columns).unwrap();
//! let engine = H2oEngine::new(relation, EngineConfig::default());
//!
//! // select sum(a0+a1+a2) from R where a3 < 0
//! let query = Query::aggregate(
//!     [Aggregate::sum(Expr::sum_of([AttrId(0), AttrId(1), AttrId(2)]))],
//!     Conjunction::of([Predicate::lt(3u32, 0)]),
//! ).unwrap();
//!
//! let result = engine.execute(&query).unwrap();
//! assert_eq!(result.rows(), 1);
//!
//! // Grouped aggregation (beyond the paper's evaluation):
//! // select a0, sum(a1), count(*) from R where a3 < 0 group by a0
//! let rollup = Query::grouped(
//!     [Expr::col(0u32)],
//!     [Aggregate::sum(Expr::col(1u32)), Aggregate::count()],
//!     Conjunction::of([Predicate::lt(3u32, 0)]),
//! ).unwrap();
//! let rolled = engine.execute(&rollup).unwrap();
//! // One row per distinct key, sorted ascending by key vector — the
//! // engine-wide determinism convention for grouped results.
//! assert!(rolled.iter_rows().all(|r| r.len() == 3));
//! // Keep querying: the engine adapts its layouts to the workload.
//! ```
//!
//! ## Grouped aggregation (deviation from the paper)
//!
//! The paper's evaluation stops at select-project-aggregate; this
//! reproduction adds `group by` as a first-class query class
//! ([`Query::grouped`](h2o_expr::Query::grouped)): hash-grouped
//! aggregation is implemented in **all three** kernel strategies (fused,
//! selection-vector, column-major — the column-major kernel materializes
//! key/input intermediates column-at-a-time, faithful to its §2.1 cost
//! structure), morsel-parallel execution merges morsel-local hash tables
//! through the associative [`GroupedAggs`](h2o_expr::GroupedAggs) merge,
//! and every strategy emits rows sorted ascending by key vector, so
//! results are bit-identical across strategies and serial/parallel
//! execution. Group-key columns count as hot select-clause attributes for
//! the adaptation mechanism, so grouped workloads drive layout convergence
//! like any other (see `examples/grouped_analytics.rs`); the
//! `fig18_grouped_agg` bench binary measures rows/sec versus group
//! cardinality per strategy.
//!
//! ## Parallel execution (deviation from the paper)
//!
//! The paper's prototype executes each query on one thread. This
//! reproduction adds **morsel-driven intra-query parallelism** across all
//! three execution strategies and the online-reorganization operator: scans
//! split into fixed-size row morsels that worker threads claim greedily,
//! and per-morsel partials are re-assembled deterministically (projection
//! blocks concatenated in row order, aggregate accumulators merged, online
//! reorganization stitching disjoint blocks of the new layout), so parallel
//! results are **bit-identical** to serial ones. Three
//! [`EngineConfig`](h2o_core::EngineConfig) knobs control it:
//!
//! * `parallelism: Option<usize>` — worker count; `None` = all available
//!   cores, `Some(1)` = the paper-faithful serial path
//!   ([`EngineConfig::single_threaded`](h2o_core::EngineConfig::single_threaded));
//! * `morsel_rows: usize` — rows per morsel (default 65 536);
//! * `parallel_row_threshold: usize` — relations at or below this row count
//!   always run serially, so tiny scans never pay fork/join overhead.
//!
//! See `h2o_exec::parallel` for the scheduler and the determinism argument,
//! and the `fig15_parallel_scaling` bench binary for thread-scaling
//! measurements.
//!
//! ## Concurrent serving (deviation from the paper)
//!
//! The engine is shared: [`H2oEngine::execute`](h2o_core::H2oEngine::execute)
//! takes `&self`, so any number of client threads can query one engine
//! (wrap it in an `Arc` or borrow it into scoped threads). Reads are
//! **snapshot-isolated**: each query pins the currently published
//! `Arc<LayoutCatalog>` ([`storage::CatalogSnapshot`]) and plans, compiles
//! and scans against that immutable version. Appends, explicit layout
//! administration and adaptive reorganization serialize behind a writer
//! lock and publish new catalog versions in one atomic swap — in-flight
//! readers keep their snapshot and never block. Group payloads are
//! **segmented** (64K-row `Arc`-shared segments plus a mutable tail), so
//! the copy-on-write cost of an append batch is O(batch + one tail
//! segment per layout), independent of relation size
//! (`EngineStats::bytes_cloned_on_write` exposes it, and the
//! `fig17_write_throughput` binary measures it). With
//! [`EngineConfig::background`](h2o_core::EngineConfig::background),
//! reorganization moves entirely off the query path onto a background
//! reorganizer
//! ([`H2oEngine::spawn_reorganizer`](h2o_core::H2oEngine::spawn_reorganizer)
//! or an explicit
//! [`maintain()`](h2o_core::H2oEngine::maintain) pump). The
//! `tests/concurrency.rs` stress suite pins all of this differentially
//! against the serial interpreter, and `fig16_concurrent_throughput`
//! measures queries/sec versus reader-thread count.
//!
//! The crates behind this facade:
//!
//! | crate | contents |
//! |---|---|
//! | [`storage`] | column groups, layout catalog (Data Layout Manager) |
//! | [`expr`] | queries, expressions, the interpreted generic operator |
//! | [`exec`] | execution strategies, specialized kernels, operator cache |
//! | [`cost`] | Eq. 1 / Eq. 2 cost model (cache-miss CPU model) |
//! | [`adapt`] | monitoring window, affinity matrices, candidate adviser |
//! | [`partition`] | AutoPart offline baseline, brute-force oracle |
//! | [`core`] | the adaptive engine, static baselines, optimal oracle |
//! | [`workload`] | benchmark data/query generators (incl. synthetic SkyServer) |

pub use h2o_adapt as adapt;
pub use h2o_core as core;
pub use h2o_cost as cost;
pub use h2o_exec as exec;
pub use h2o_expr as expr;
pub use h2o_partition as partition;
pub use h2o_storage as storage;
pub use h2o_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use h2o_core::{
        EngineConfig, EngineStats, H2oEngine, MaintenanceReport, ReorganizerHandle, StaticEngine,
        StaticKind,
    };
    pub use h2o_expr::{
        Aggregate, ArithOp, CmpOp, Conjunction, Expr, Predicate, Query, QueryResult,
    };
    pub use h2o_storage::{AttrId, AttrSet, CatalogSnapshot, Relation, Schema, Value};
}
