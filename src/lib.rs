//! # H2O: a hands-free adaptive store — Rust reproduction
//!
//! A from-scratch implementation of **H2O** (Alagiannis, Idreos, Ailamaki —
//! SIGMOD 2014): an in-memory analytical engine that makes *no fixed
//! decision* about physical data layout. Row-major, column-major and
//! column-group layouts coexist; the engine monitors the query stream and
//! — driven by an affinity/cost model — creates new layouts **while
//! answering queries**, generating specialized access operators per
//! (layout, query-shape) combination.
//!
//! ```
//! use h2o::prelude::*;
//! use h2o::storage::LogicalType;
//!
//! // A mixed-type relation on the fixed 64-bit lane: a dictionary-encoded
//! // object class, an integer run id, and two f64 sky coordinates.
//! let schema = Schema::typed([
//!     ("class", LogicalType::Dict),
//!     ("run", LogicalType::I64),
//!     ("ra", LogicalType::F64),
//!     ("dec", LogicalType::F64),
//! ]).into_shared();
//! let dict = schema.dictionary(AttrId(0)).unwrap();
//! let columns = vec![
//!     h2o::workload::gen_dict_column(10_000, dict, &["STAR", "GALAXY"], 42),
//!     h2o::workload::gen_key_column(10_000, 32, 42),
//!     h2o::workload::gen_f64_column(10_000, 0.0, 360.0, 42),
//!     h2o::workload::gen_f64_column(10_000, -90.0, 90.0, 42),
//! ];
//! let relation = Relation::columnar(schema.clone(), columns).unwrap();
//! let engine = H2oEngine::new(relation, EngineConfig::default());
//!
//! // select sum(ra+dec) from R where ra < 180.0 and class = 'GALAXY'
//! let query = Query::aggregate(
//!     [Aggregate::sum(Expr::sum_of([AttrId(2), AttrId(3)]))],
//!     Conjunction::of([
//!         Predicate::lt(2u32, 180.0),
//!         Predicate::eq(0u32, "GALAXY"),
//!     ]),
//! ).unwrap();
//! let result = engine.run(Request::query(&query)).unwrap().result;
//! assert_eq!(result.rows(), 1);
//!
//! // Grouped rollup keyed on the dictionary column (beyond the paper):
//! // select class, avg(dec), count(*) from R group by class
//! let rollup = Query::grouped(
//!     [Expr::col(0u32)],
//!     [Aggregate::avg(Expr::col(3u32)), Aggregate::count()],
//!     Conjunction::always(),
//! ).unwrap();
//! let rolled = engine.run(Request::query(&rollup)).unwrap().result;
//! // One row per distinct key, sorted ascending in the key's typed order —
//! // the engine-wide determinism convention for grouped results.
//! assert_eq!(rolled.rows(), 2);
//! // Render decodes lanes through the output types: codes back to labels,
//! // f64 bit patterns back to doubles.
//! let types = h2o::expr::typecheck::check(&rollup, &schema).unwrap().output_types();
//! let dicts = vec![schema.dictionary(AttrId(0)).cloned(), None, None];
//! assert!(rolled.render(&types, &dicts).contains("\"STAR\""));
//!
//! // The engine has no implicit coercions: an i64 constant against the
//! // f64 `ra` column is rejected at plan time, before any scan.
//! let ill_typed = Query::project(
//!     [Expr::col(2u32)],
//!     Conjunction::of([Predicate::lt(2u32, 180)]),
//! ).unwrap();
//! assert!(engine.run(Request::query(&ill_typed)).is_err());
//! // Keep querying: the engine adapts its layouts to the workload.
//! ```
//!
//! ## Typed columns on a fixed 64-bit lane
//!
//! Every value is one 64-bit lane word typed by the schema
//! ([`storage::LogicalType`]): `I64` integers (the paper's evaluation
//! type), `F64` doubles stored as bit patterns, and `Dict`
//! dictionary-encoded strings ([`storage::Dictionary`], `Arc`-shared per
//! attribute). The fixed lane keeps segment layout, copy-on-write
//! accounting and the cost model type-oblivious; comparisons and
//! arithmetic are typed and **baked into the generated operators** at
//! plan time. Typing is strict — no implicit coercions; cross-type
//! predicates/arithmetic, ordered dictionary comparisons and dictionary
//! measures are rejected as
//! [`QueryError::TypeMismatch`](h2o_expr::QueryError) by the plan-time
//! checker ([`expr::typecheck`]). `f64` ordering follows
//! [`f64::total_cmp`] on every path; `f64` sums fold in row order within
//! a morsel and merge in morsel order, and the workload generators draw
//! doubles from dyadic grids so sums are exact — serial, parallel and all
//! three strategies stay bit-identical on mixed-type workloads
//! (`tests/mixed_types.rs`, `fig19_mixed_types`). Sealed 64K-row segments
//! carry min/max **zone maps**; scans skip segments that cannot satisfy a
//! conjunctive predicate (`EngineStats::segments_skipped`).
//!
//! ## Vectorized kernel inner loops (deviation from the paper)
//!
//! The paper's generated operators are scalar; this reproduction runs the
//! hot inner loops — predicate evaluation, selection-vector build and
//! id-gather, and the fused/column-major aggregate folds — in
//! portable-SIMD style over the 64-bit comparator-key lanes
//! (`h2o_exec::kernels::simd`). The **lane/tail contract**: every segment
//! run is processed as fixed-width 8-lane chunks (bounds checks hoisted
//! into one up-front assert so the chunk loop autovectorizes) plus a
//! scalar tail for the remaining `rows % 8`, and both paths must be
//! bit-identical to the retained `*_scalar` reference bodies — pinned by
//! the `tests/simd.rs` differential suite. Associative accumulators
//! (wrapping integer sums, comparator-key `min`/`max`, counts) may split
//! across the eight lanes; **`f64` sums stay in fold order** — one
//! in-row-order reduction chain with only the surrounding scan
//! vectorized — because float addition is not associative and the
//! engine's determinism convention pins `f64` sums to row order within a
//! morsel (the fold-order contract on
//! [`AggState`](h2o_expr::agg::AggState)). The `fig20_simd_scan` binary
//! measures vectorized vs scalar rows/sec per strategy, and the CI
//! guardrail pins a ≥ 2x speedup on selective selection-vector scans
//! plus fingerprint identity.
//!
//! ## Grouped aggregation (deviation from the paper)
//!
//! The paper's evaluation stops at select-project-aggregate; this
//! reproduction adds `group by` as a first-class query class
//! ([`Query::grouped`](h2o_expr::Query::grouped)): hash-grouped
//! aggregation is implemented in **all three** kernel strategies (fused,
//! selection-vector, column-major — the column-major kernel materializes
//! key/input intermediates column-at-a-time, faithful to its §2.1 cost
//! structure), morsel-parallel execution merges morsel-local hash tables
//! through the associative [`GroupedAggs`](h2o_expr::GroupedAggs) merge,
//! and every strategy emits rows sorted ascending by key vector, so
//! results are bit-identical across strategies and serial/parallel
//! execution. Group-key columns count as hot select-clause attributes for
//! the adaptation mechanism, so grouped workloads drive layout convergence
//! like any other (see `examples/grouped_analytics.rs`); the
//! `fig18_grouped_agg` bench binary measures rows/sec versus group
//! cardinality per strategy.
//!
//! ## Multi-relation queries (deviation from the paper)
//!
//! The paper's prototype is single-relation; this reproduction answers
//! **two-table hash equi-joins** end-to-end.
//! [`Query::join`](h2o_expr::Query::join) binds two named relations and
//! builds the shape — equi-join key pairs, an independent residual
//! filter per side, and cross-relation projections, aggregates or
//! grouped rollups over the combined tuple — typed through
//! [`check_join`](h2o_expr::check_join) (join keys must share a
//! [`LogicalType`](h2o_storage::LogicalType); ambiguous names are
//! rejected unless qualified with `lcol`/`rcol`):
//!
//! ```
//! use h2o::prelude::*;
//! use h2o::storage::LogicalType;
//!
//! let photo = Schema::typed([
//!     ("objID", LogicalType::I64),
//!     ("mag", LogicalType::I64),
//! ]).into_shared();
//! let spec = Schema::typed([
//!     ("bestObjID", LogicalType::I64),
//!     ("z", LogicalType::I64),
//! ]).into_shared();
//!
//! // The engine's primary relation is bound as "R"; secondaries are
//! // registered by name and join against the same catalog snapshot.
//! let engine = H2oEngine::new(
//!     Relation::columnar(photo.clone(), vec![
//!         (0..1000).collect(),                     // objID
//!         (0..1000).map(|i| i % 30).collect(),     // mag
//!     ]).unwrap(),
//!     EngineConfig::default(),
//! );
//! engine.add_relation("spec", Relation::columnar(spec.clone(), vec![
//!     (0..500).map(|i| i * 2).collect(),           // bestObjID
//!     (0..500).map(|i| i % 7).collect(),           // z
//! ]).unwrap()).unwrap();
//!
//! // select mag, z from R join spec on objID = bestObjID where mag < 3
//! let b = Query::join(("R", photo), ("spec", spec))
//!     .on("objID", "bestObjID").unwrap();
//! let (mag, z) = (b.lcol("mag").unwrap(), b.rcol("z").unwrap());
//! let q = b
//!     .filter_left(Conjunction::of([Predicate::lt(1u32, 3)]))
//!     .project([mag, z]).unwrap();
//!
//! let out = engine.run(Request::join(&q)).unwrap();
//! // Differential oracle on the very snapshot the engine answered from:
//! let db = out.snapshot.db().unwrap();
//! let want = h2o::expr::interpret_join(
//!     db.relation("R").unwrap(), db.relation("spec").unwrap(), &q,
//! ).unwrap();
//! assert_eq!(out.result.fingerprint(), want.fingerprint());
//! assert!(out.result.rows() > 0);
//! ```
//!
//! Execution reuses the whole single-relation machinery: all three
//! strategies implement the hash join over segment runs — a
//! morsel-parallel build (partitioned tables merged in morsel order),
//! a probe fused with the residual filter and select program, SIMD
//! mask/selection-vector reuse and zone-map pruning on both sides, an
//! early exit when the build side is empty — so for a fixed build side
//! results are bit-identical across strategies, layouts and
//! serial/parallel execution (`tests/joins.rs` pins this against the
//! interpreter).
//!
//! **Greedy selectivity-driven join ordering.** The engine keeps no
//! cardinality statistics. Instead, each side's residual-filter
//! selectivity is *observed*: every join execution reports how many
//! build/probe rows survived the filters, and an EWMA keyed by
//! (relation, predicate shape) — the join flavour of
//! [`observed_selectivity`](h2o_core::H2oEngine::observed_selectivity) —
//! feeds the next plan. The side with the smaller estimated post-filter
//! row count builds the hash table (ties build left); forcing the other
//! side via
//! [`ExecOptions::build_side`](h2o_core::ExecOptions::build_side)
//! is how the `fig21_join` guardrail demonstrates the greedy order
//! beats the worst order. Join sides bound to the primary relation also
//! feed the monitoring window as key + payload access patterns, so a
//! join workload converges the physical layout to the join's column
//! group (`examples/join_analytics.rs`). Joins honor the same
//! stop-control options as single-relation queries: the cancel token,
//! deadline and morsel budget thread through both the build and probe
//! phases.
//!
//! **The probe fast path.** Three execution shortcuts keep the probe
//! loop cheap without changing a single output bit:
//!
//! * *Bloom-filtered probes* — the finished build side is folded
//!   (morsel-parallel, OR-merged in morsel order) into a
//!   [`JoinFilter`](h2o_exec::JoinFilter): a blocked bloom filter plus
//!   an exact per-key `[min,max]` range in comparator-key space, sized
//!   from the post-prune build cardinality. Probes test the range with
//!   the existing SIMD mask kernels and the bloom bits per surviving
//!   lane *before* touching the hash table, so low-match-rate probes
//!   skip the random-access lookup
//!   ([`JoinExecStats::probe_bloom_rejects`](h2o_exec::JoinExecStats)
//!   counts the savings). No false negatives ⇒ bit-identical on or off
//!   (`tests/join_fastpath.rs` proptests it).
//! * *Join-aggregate fusion* — when no select expression reads a
//!   build-side attribute, the build payload is empty and a probe
//!   row's `k` matches are `k` identical aggregate updates;
//!   [`compile_join`](h2o_exec::compile_join) detects this
//!   ([`CompiledJoinOp::fused`](h2o_exec::CompiledJoinOp::fused)) and
//!   the probe folds one multiplicity-weighted update instead —
//!   `f64` sums apply the multiplicity as sequential adds, preserving
//!   the pinned fold order and the serial ≡ parallel fingerprint
//!   contract.
//! * *Build pruning + costed sizing* — build-side zone maps prune
//!   segment runs before hashing, the surviving cardinality sizes the
//!   hash table and filter, and the `h2o-cost` model prices the filter
//!   build and per-probe test so build-side choice stays honest.
//!
//! Both toggles default on;
//! [`JoinOptions`](h2o_exec::JoinOptions) /
//! [`execute_join_with_policy_opts`](h2o_exec::execute_join_with_policy_opts)
//! switch them off for differential runs, and `fig21_join`'s
//! `bloom`/`fusion` entries gate the win in CI
//! (`check_guardrail --min-bloom-speedup/--min-fusion-speedup`).
//!
//! ## One entry point: `run` and `ExecOptions`
//!
//! Every query — single-relation or join, plain or hinted, bounded or
//! not — goes through one method:
//! [`H2oEngine::run`](h2o_core::H2oEngine::run) takes a
//! [`Request`](h2o_core::Request) (a query shape plus composable
//! [`ExecOptions`](h2o_core::ExecOptions)) and returns an
//! [`Outcome`](h2o_core::Outcome): the result rows plus the exact
//! snapshot they were computed from. Options compose freely — the old
//! `execute_*` method-per-combination family survives only as deprecated
//! wrappers:
//!
//! ```
//! use h2o::prelude::*;
//! use std::time::Duration;
//!
//! let relation = Relation::columnar(
//!     Schema::with_width(3).into_shared(),
//!     vec![(0..1000).collect(), (0..1000).rev().collect(), vec![7; 1000]],
//! ).unwrap();
//! let engine = H2oEngine::new(relation, EngineConfig::default());
//!
//! let q = Query::project(
//!     [Expr::col(1u32)],
//!     Conjunction::of([Predicate::lt(0u32, 100)]),
//! ).unwrap();
//!
//! // A selectivity hint *and* a deadline *and* a morsel budget on the
//! // same request — the options compose.
//! let out = engine
//!     .run(Request::query(&q)
//!         .hint(0.1)
//!         .deadline(Duration::from_secs(5))
//!         .budget(1 << 20))
//!     .unwrap();
//! assert_eq!(out.result.rows(), 100);
//!
//! // The outcome carries the snapshot the answer came from, so any
//! // caller can re-derive it differentially:
//! let want = h2o::expr::interpret(out.snapshot.primary(), &q).unwrap();
//! assert_eq!(out.result.fingerprint(), want.fingerprint());
//! ```
//!
//! This is also the server's API: the `h2o-server` crate speaks a
//! line-delimited JSON protocol whose per-request `opts` object mirrors
//! `ExecOptions` field-for-field (see the README's "Serving" section).
//!
//! ## Parallel execution (deviation from the paper)
//!
//! The paper's prototype executes each query on one thread. This
//! reproduction adds **morsel-driven intra-query parallelism** across all
//! three execution strategies and the online-reorganization operator: scans
//! split into fixed-size row morsels that worker threads claim greedily,
//! and per-morsel partials are re-assembled deterministically (projection
//! blocks concatenated in row order, aggregate accumulators merged, online
//! reorganization stitching disjoint blocks of the new layout), so parallel
//! results are **bit-identical** to serial ones. Three
//! [`EngineConfig`](h2o_core::EngineConfig) knobs control it:
//!
//! * `parallelism: Option<usize>` — worker count; `None` = all available
//!   cores, `Some(1)` = the paper-faithful serial path
//!   ([`EngineConfig::single_threaded`](h2o_core::EngineConfig::single_threaded));
//! * `morsel_rows: usize` — rows per morsel (default 65 536);
//! * `parallel_row_threshold: usize` — relations at or below this row count
//!   always run serially, so tiny scans never pay fork/join overhead.
//!
//! See `h2o_exec::parallel` for the scheduler and the determinism argument,
//! and the `fig15_parallel_scaling` bench binary for thread-scaling
//! measurements.
//!
//! ## Concurrent serving (deviation from the paper)
//!
//! The engine is shared: [`H2oEngine::run`](h2o_core::H2oEngine::run)
//! takes `&self`, so any number of client threads can query one engine
//! (wrap it in an `Arc` or borrow it into scoped threads). Reads are
//! **snapshot-isolated**: each query pins the currently published
//! `Arc<LayoutCatalog>` ([`storage::CatalogSnapshot`]) and plans, compiles
//! and scans against that immutable version. Appends, explicit layout
//! administration and adaptive reorganization serialize behind a writer
//! lock and publish new catalog versions in one atomic swap — in-flight
//! readers keep their snapshot and never block. Group payloads are
//! **segmented** (64K-row `Arc`-shared segments plus a mutable tail), so
//! the copy-on-write cost of an append batch is O(batch + one tail
//! segment per layout), independent of relation size
//! (`EngineStats::bytes_cloned_on_write` exposes it, and the
//! `fig17_write_throughput` binary measures it). With
//! [`EngineConfig::background`](h2o_core::EngineConfig::background),
//! reorganization moves entirely off the query path onto a background
//! reorganizer
//! ([`H2oEngine::spawn_reorganizer`](h2o_core::H2oEngine::spawn_reorganizer)
//! or an explicit
//! [`maintain()`](h2o_core::H2oEngine::maintain) pump). The
//! `tests/concurrency.rs` stress suite pins all of this differentially
//! against the serial interpreter, and `fig16_concurrent_throughput`
//! measures queries/sec versus reader-thread count.
//!
//! ## Fault tolerance (deviation from the paper)
//!
//! The paper's prototype aborts on any failure; this reproduction keeps
//! serving. Query execution and the write path run under panic
//! isolation: a panic surfaces as the typed
//! [`EngineError::ExecutionPanicked`](h2o_core::EngineError) — the
//! engine stays fully usable, since a failing operation abandons its
//! private copy-on-write clone before anything is published. Queries are
//! cooperatively cancellable
//! ([`ExecOptions::cancel`](h2o_core::ExecOptions::cancel) with a shared
//! [`CancelToken`](h2o_core::CancelToken)), deadline-bounded
//! ([`ExecOptions::deadline`](h2o_core::ExecOptions::deadline) or the
//! engine-wide [`EngineConfig::query_deadline`](h2o_core::EngineConfig))
//! and work-bounded
//! ([`ExecOptions::budget`](h2o_core::ExecOptions::budget)), returning
//! `EngineError::Cancelled` / `EngineError::Timeout` /
//! `EngineError::BudgetExhausted` without publishing any partial state. The background reorganizer is supervised:
//! [`H2oEngine::spawn_reorganizer`](h2o_core::H2oEngine::spawn_reorganizer)
//! restarts a panicked maintenance round with capped exponential backoff
//! and reports health through
//! [`ReorganizerHandle::status`](h2o_core::ReorganizerHandle::status).
//! All of it is exercised by `tests/faults.rs`, a seeded chaos suite
//! over deterministic fault-injection sites
//! (`h2o_storage::failpoints`, compiled only under
//! `--features failpoints`), and the `fig22_fault_overhead` guardrail
//! pins the hot-path cost of the machinery at ≤ 1.03x. See the README's
//! "Failure model" section for the full contract.
//!
//! The crates behind this facade:
//!
//! | crate | contents |
//! |---|---|
//! | [`storage`] | column groups, layout catalog (Data Layout Manager) |
//! | [`expr`] | queries (single-relation and join), expressions, the interpreted generic + join operators |
//! | [`exec`] | execution strategies, specialized kernels (incl. hash join), operator cache |
//! | [`cost`] | Eq. 1 / Eq. 2 cost model (cache-miss CPU model) + join build/probe pricing |
//! | [`adapt`] | monitoring window, affinity matrices, candidate adviser |
//! | [`partition`] | AutoPart offline baseline, brute-force oracle |
//! | [`core`] | the adaptive multi-relation engine, static baselines, optimal oracle |
//! | [`server`] | TCP serving front end: line-delimited JSON over `run(Request)`, admission control, prepared statements, graceful drain |
//! | [`workload`] | benchmark data/query generators (incl. synthetic SkyServer + join workload) |

pub use h2o_adapt as adapt;
pub use h2o_core as core;
pub use h2o_cost as cost;
pub use h2o_exec as exec;
pub use h2o_expr as expr;
pub use h2o_partition as partition;
pub use h2o_server as server;
pub use h2o_storage as storage;
pub use h2o_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use h2o_core::{
        CancelToken, EngineConfig, EngineStats, ExecOptions, ExecSnapshot, H2oEngine,
        MaintenanceReport, Outcome, ReorganizerHandle, Request, StaticEngine, StaticKind,
    };
    pub use h2o_expr::{
        Aggregate, ArithOp, CmpOp, Conjunction, Expr, Predicate, Query, QueryResult,
    };
    pub use h2o_storage::{AttrId, AttrSet, CatalogSnapshot, Relation, Schema, Value};
}
