//! Two-table analytics on an adaptive store: the SkyServer photo↔spec
//! join workload (`R.objID = spec.bestObjID` lookups plus grouped
//! rollups over the join) hammers a key + payload cluster of the photo
//! table, and the engine converges its physical layout to it — the
//! multi-relation analogue of `grouped_analytics.rs` (the paper itself
//! stops at single-relation queries).
//!
//! The example prints the build side the greedy selectivity-driven
//! ordering picks, the layout the adviser materializes, the per-batch
//! latency trend, and a sample rollup — every result is differentially
//! checked against the join interpreter on the snapshot it ran against.
//!
//! ```sh
//! cargo run --release --example join_analytics
//! ```

use h2o::expr::interpret_join;
use h2o::prelude::*;
use h2o::workload::skyserver_join_workload;
use std::time::Instant;

fn main() {
    let photo_rows = 120_000;
    let spec_rows = 60_000;
    let w = skyserver_join_workload(photo_rows, spec_rows, 120, 0.85, 0.3, 7);

    let engine = H2oEngine::new(
        Relation::columnar(w.photo.schema.clone(), w.photo_columns.clone()).unwrap(),
        EngineConfig::default(),
    );
    engine
        .add_relation(
            "spec",
            Relation::columnar(w.spec_schema.clone(), w.spec_columns.clone()).unwrap(),
        )
        .unwrap();

    println!(
        "photo ({photo_rows} rows x {} attrs) \u{22c8} spec ({spec_rows} rows x {} attrs), \
         {} join queries, photo initially columnar ({} layouts)\n",
        w.photo.schema.len(),
        w.spec_schema.len(),
        w.queries.len(),
        engine.catalog().group_count()
    );

    // Three batches of the workload: the first pays the all-columns price
    // (and teaches the selectivity history), later ones run on whatever
    // the adviser built for the join's key + payload columns.
    for (batch, chunk) in w.queries.chunks(40).enumerate() {
        let t0 = Instant::now();
        let mut checked = 0;
        for (i, q) in chunk.iter().enumerate() {
            let out = engine.run(Request::join(q)).unwrap();
            let (db, got) = (out.snapshot.db().unwrap(), out.result);
            // Differential check on a sample of the stream, against the
            // interpreter on the very snapshot the engine answered from.
            if i % 10 == 0 {
                let want =
                    interpret_join(db.relation("R").unwrap(), db.relation("spec").unwrap(), q)
                        .unwrap();
                assert_eq!(
                    got.fingerprint(),
                    want.fingerprint(),
                    "engine join must match the interpreter"
                );
                checked += 1;
            }
        }
        let report = engine.last_join_report().unwrap();
        println!(
            "batch {batch}: 40 joins in {:>7.3}s  ({checked} differentially checked, \
             last build side: {}, {} photo layouts, {} created so far)",
            t0.elapsed().as_secs_f64(),
            if report.build_is_left {
                "photo"
            } else {
                "spec"
            },
            engine.catalog().group_count(),
            engine.stats().layouts_created,
        );
    }

    // What did the adviser converge to on the photo side?
    let stats = engine.stats();
    println!(
        "\nadaptation: {} rounds, {} layouts created, {} recommendations",
        stats.adaptations, stats.recommendations, stats.layouts_created
    );
    for g in engine.catalog().groups().filter(|g| g.width() > 1) {
        let names: Vec<&str> = g
            .attrs()
            .iter()
            .map(|a| w.photo.schema.attr(*a).unwrap().name())
            .collect();
        println!("  materialized group: [{}]", names.join(","));
    }

    // A sample rollup over the join: object class x summed redshift.
    let rollup = w.queries.iter().find(|q| q.is_grouped()).unwrap();
    let out = engine.run(Request::join(rollup)).unwrap().result;
    let report = engine.last_join_report().unwrap();
    println!(
        "\nsample rollup (greedy build side: {}, estimated selectivities \
         photo {:.2} / spec {:.2}):",
        if report.build_is_left {
            "photo"
        } else {
            "spec"
        },
        report.left_selectivity_estimate,
        report.right_selectivity_estimate,
    );
    println!("    type        sum(z)     count");
    for row in out.iter_rows() {
        // Grouped join output: i64 key lane, f64 sum lane, i64 count.
        println!(
            "{:>8}  {:>12.3}  {:>8}",
            row[0],
            f64::from_bits(row[1] as u64),
            row[2]
        );
    }
}
