//! A shifting analytical workload: the scenario the paper's introduction
//! motivates — no a-priori workload knowledge, the access pattern changes
//! mid-stream, and the engine must keep up without a DBA.
//!
//! Phase 1 explores "sensor" attributes; phase 2 abruptly pivots to
//! "billing" attributes. We race H2O against both static designs and print
//! a per-phase comparison.
//!
//! ```sh
//! cargo run --release --example adaptive_analytics
//! ```

use h2o::core::{StaticEngine, StaticKind};
use h2o::exec::CompileCostModel;
use h2o::prelude::*;
use std::time::Instant;

fn phase_query(base: u32, i: i64) -> Query {
    // select a_base + a_base+1 + ... + a_base+7 where a_base+8 < v
    let attrs: Vec<AttrId> = (base..base + 8).map(AttrId).collect();
    Query::project(
        [Expr::sum_of(attrs)],
        Conjunction::of([Predicate::lt(base + 8, (i % 9 - 4) * 200_000_000)]),
    )
    .unwrap()
}

fn main() {
    let n_attrs = 80;
    let rows = 200_000;
    let schema = Schema::with_width(n_attrs).into_shared();
    let columns = h2o::workload::gen_columns(n_attrs, rows, 7);

    let h2o_engine = H2oEngine::new(
        Relation::columnar(schema.clone(), columns.clone()).unwrap(),
        EngineConfig::default(),
    );
    let row_store = StaticEngine::new(
        schema.clone(),
        columns.clone(),
        StaticKind::RowStore,
        CompileCostModel::ZERO,
    )
    .unwrap();
    let col_store = StaticEngine::new(
        schema,
        columns,
        StaticKind::ColumnStore,
        CompileCostModel::ZERO,
    )
    .unwrap();

    let phases = [
        ("sensors (attrs 0..9)", 0u32),
        ("billing (attrs 40..49)", 40u32),
    ];
    for (label, base) in phases {
        let (mut t_h2o, mut t_row, mut t_col) = (0.0f64, 0.0, 0.0);
        for i in 0..60i64 {
            let q = phase_query(base, i);
            let t = Instant::now();
            let a = h2o_engine.run(Request::query(&q)).unwrap().result;
            t_h2o += t.elapsed().as_secs_f64();
            let t = Instant::now();
            let b = row_store.execute(&q).unwrap();
            t_row += t.elapsed().as_secs_f64();
            let t = Instant::now();
            let c = col_store.execute(&q).unwrap();
            t_col += t.elapsed().as_secs_f64();
            assert_eq!(a.fingerprint(), b.fingerprint());
            assert_eq!(b.fingerprint(), c.fingerprint());
        }
        println!("{label:>24}: H2O {t_h2o:.3}s | column-store {t_col:.3}s | row-store {t_row:.3}s");
    }

    let stats = h2o_engine.stats();
    println!(
        "\nH2O adapted across the shift: {} shifts detected, {} layouts created, window now {} queries",
        stats.shifts_detected,
        stats.layouts_created,
        h2o_engine.window_size(),
    );
}
