//! Grouped-aggregation analytics on an adaptive store: a rollup workload
//! (`select key, sum(..), count(*) ... group by key`) hammers one key +
//! measure cluster, and the engine converges its physical layout to it —
//! the group-by analogue of the paper's adaptation experiments (the paper
//! itself stops at select-project-aggregate).
//!
//! The example prints the layout the adviser materializes, the per-phase
//! latency trend, and a sample of the rollup itself — every result is
//! differentially checked against the interpreter on the way.
//!
//! ```sh
//! cargo run --release --example grouped_analytics
//! ```

use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::workload::synth::threshold_for_selectivity;
use std::time::Instant;

/// The daily-rollup query: group by the category key (a0), aggregate a
/// fixed measure cluster, filter on a timestamp-like column.
fn rollup(selectivity: f64) -> Query {
    Query::grouped(
        [Expr::col(0u32)],
        [
            Aggregate::sum(Expr::col(1u32)),
            Aggregate::sum(Expr::col(2u32)),
            Aggregate::max(Expr::col(3u32)),
            Aggregate::count(),
        ],
        Conjunction::of([Predicate::lt(4u32, threshold_for_selectivity(selectivity))]),
    )
    .unwrap()
}

fn main() {
    let n_attrs = 40;
    let rows = 300_000;
    let categories = 32;
    let schema = Schema::with_width(n_attrs).into_shared();
    // a0 is the low-cardinality category key; everything else is uniform.
    let columns = h2o::workload::gen_columns_with_keys(n_attrs, rows, 11, 1, categories);
    let engine = H2oEngine::new(
        Relation::columnar(schema, columns).unwrap(),
        EngineConfig::default(),
    );

    println!(
        "grouped rollup over {rows} rows x {n_attrs} attrs, {categories} categories, \
         initially columnar ({} layouts)\n",
        engine.catalog().group_count()
    );

    // Three batches of the same hot rollup shape: the first pays the
    // all-columns price, later ones run on whatever the adviser built.
    for batch in 0..3 {
        let t0 = Instant::now();
        let mut checked = 0;
        for i in 0..25 {
            let q = rollup(0.1 * ((batch * 25 + i) % 9 + 1) as f64);
            let got = engine.run(Request::query(&q)).unwrap().result;
            // Differential check on a sample of the stream.
            if i % 8 == 0 {
                let want = interpret(&engine.catalog(), &q).unwrap();
                assert_eq!(got, want, "engine result must match the interpreter");
                checked += 1;
            }
            assert!(got.rows() <= categories as usize);
        }
        println!(
            "batch {batch}: 25 rollups in {:>7.3}s  ({} differentially checked, \
             {} layouts, {} created so far)",
            t0.elapsed().as_secs_f64(),
            checked,
            engine.catalog().group_count(),
            engine.stats().layouts_created,
        );
    }

    // What did the adviser converge to?
    let stats = engine.stats();
    println!(
        "\nadaptation: {} rounds, {} layouts created, {} recommendations",
        stats.adaptations, stats.recommendations, stats.layouts_created
    );
    for g in engine.catalog().groups().filter(|g| g.width() > 1) {
        let attrs: Vec<String> = g.attrs().iter().map(|a| a.to_string()).collect();
        println!("  materialized group: [{}]", attrs.join(","));
    }
    println!("\nplan for the hot rollup now:");
    print!("{}", engine.explain(&rollup(0.5)).unwrap());

    // And the rollup itself, sorted ascending by category key (the
    // engine-wide grouped determinism convention).
    let out = engine.run(Request::query(&rollup(0.5))).unwrap().result;
    println!("\ncategory  sum(a1)        sum(a2)        max(a3)     count");
    for row in out.iter_rows().take(6) {
        println!(
            "{:>8}  {:>13}  {:>13}  {:>10}  {:>8}",
            row[0], row[1], row[2], row[3], row[4]
        );
    }
    if out.rows() > 6 {
        println!("   ... ({} categories total)", out.rows());
    }
}
