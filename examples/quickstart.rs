//! Quickstart: load a relation, run queries, watch H2O adapt.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use h2o::prelude::*;

fn main() {
    // A 40-attribute relation of 100k tuples, initially column-major —
    // H2O needs no schema-design decision up front.
    let n_attrs: usize = 40;
    let rows = 100_000;
    let schema = Schema::with_width(n_attrs).into_shared();
    let columns = h2o::workload::gen_columns(n_attrs, rows, 42);
    let relation = Relation::columnar(schema, columns).unwrap();
    let engine = H2oEngine::new(relation, EngineConfig::default());

    // The paper's running example, Q1:
    //   select a+b+c from R where d < v1 and e > v2
    let q1 = Query::project(
        [Expr::sum_of([AttrId(0), AttrId(1), AttrId(2)])],
        Conjunction::of([
            Predicate::lt(3u32, 250_000_000),
            Predicate::gt(4u32, -750_000_000),
        ]),
    )
    .unwrap();

    let result = engine.run(Request::query(&q1)).unwrap().result;
    println!("Q1 returned {} rows (showing 3):", result.rows());
    for row in result.iter_rows().take(3) {
        println!("  {row:?}");
    }

    // An aggregation over the same hot attributes.
    let q2 = Query::aggregate(
        [
            Aggregate::max(Expr::col(0u32)),
            Aggregate::min(Expr::col(1u32)),
            Aggregate::avg(Expr::col(2u32)),
            Aggregate::count(),
        ],
        Conjunction::of([Predicate::lt(3u32, 0)]),
    )
    .unwrap();
    let agg = engine.run(Request::query(&q2)).unwrap().result;
    println!(
        "Q2 -> max(a0)={} min(a1)={} avg(a2)={} count={}",
        agg.row(0)[0],
        agg.row(0)[1],
        agg.row(0)[2],
        agg.row(0)[3]
    );

    // Keep hammering the same attribute cluster: the monitoring window
    // fills, the adviser proposes a column group, and the first query that
    // benefits materializes it while answering (lazy online
    // reorganization).
    for i in 0..40 {
        let q = Query::project(
            [Expr::sum_of([AttrId(0), AttrId(1), AttrId(2)])],
            Conjunction::of([Predicate::lt(3u32, (i - 10) * 50_000_000)]),
        )
        .unwrap();
        engine.run(Request::query(&q)).unwrap();
        if let Some(report) = engine.last_report() {
            if let Some(layout) = report.created_layout {
                println!(
                    "query {:>2}: materialized layout {layout} while answering",
                    i + 2
                );
            }
        }
    }

    // EXPLAIN shows what the engine would do for the hot query now.
    println!("\n{}", engine.explain(&q1).unwrap());

    // The store also accepts writes: every coexisting layout receives the
    // new tuples, so all plans remain valid.
    engine
        .insert(&[vec![1; n_attrs], vec![-1; n_attrs]])
        .unwrap();
    println!(
        "inserted 2 tuples; relation now {} rows across every layout",
        engine.catalog().rows()
    );

    let stats = engine.stats();
    println!(
        "\nafter {} queries: {} adaptation rounds, {} layouts created, {} groups in the catalog",
        stats.queries,
        stats.adaptations,
        stats.layouts_created,
        engine.catalog().group_count(),
    );
    println!(
        "operator cache: {} compiled, {} hits",
        engine.opcache_stats().misses,
        engine.opcache_stats().hits
    );
}
