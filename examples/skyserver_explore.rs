//! Exploratory science workload over the synthetic SkyServer table.
//!
//! The paper's Fig. 8 scenario in miniature: a wide astronomy table
//! ("PhotoObjAll", 64 attributes in semantic clusters) queried by an
//! astronomer whose interest drifts from astrometry to photometry to
//! object shapes. No tuning, no advisor run — H2O follows the drift.
//!
//! ```sh
//! cargo run --release --example skyserver_explore
//! ```

use h2o::prelude::*;
use h2o::workload::skyserver::skyserver_workload;
use std::time::Instant;

fn main() {
    let rows = 150_000;
    let (spec, columns, workload) = skyserver_workload(rows, 120, 11);
    println!(
        "PhotoObjAll (synthetic): {} attributes, {} clusters, {rows} rows, {} queries",
        spec.schema.len(),
        spec.clusters.len(),
        workload.len()
    );

    let relation = Relation::columnar(spec.schema.clone(), columns).unwrap();
    let engine = H2oEngine::new(relation, EngineConfig::default());

    let mut phase_time = 0.0f64;
    for (i, tq) in workload.iter().enumerate() {
        let t = Instant::now();
        engine
            .run(Request::query(&tq.query).hint(tq.selectivity))
            .unwrap();
        phase_time += t.elapsed().as_secs_f64();

        if let Some(created) = engine.last_report().and_then(|r| r.created_layout) {
            let snapshot = engine.catalog();
            let g = snapshot.group(created).unwrap();
            let names: Vec<&str> = g
                .attrs()
                .iter()
                .map(|&a| spec.schema.attr(a).unwrap().name())
                .collect();
            println!("  query {i:>3}: built group {created} over {names:?}");
        }
        if (i + 1) % 40 == 0 {
            println!(
                "phase ending at query {:>3}: {phase_time:.3}s, {} groups materialized",
                i + 1,
                engine.catalog().group_count() - spec.schema.len(),
            );
            phase_time = 0.0;
        }
    }

    let stats = engine.stats();
    println!(
        "\ndone: {} queries, {} adaptation rounds, {} shifts detected, {} layouts created",
        stats.queries, stats.adaptations, stats.shifts_detected, stats.layouts_created
    );
    println!(
        "storage footprint: {:.1} MB across {} layouts (base table {:.1} MB)",
        engine.catalog().total_bytes() as f64 / 1e6,
        engine.catalog().group_count(),
        (spec.schema.len() * rows * 8) as f64 / 1e6,
    );
}
