//! The wide-table problem from the paper's introduction: scientific tables
//! with hundreds (even thousands) of attributes, where neither a pure
//! row-store nor a pure column-store is a safe default.
//!
//! This example builds a 250-attribute table and runs the projectivity
//! sweep of Fig. 1 in miniature — then lets H2O handle the same queries
//! and shows it tracking the better engine at both extremes.
//!
//! ```sh
//! cargo run --release --example wide_table
//! ```

use h2o::core::{StaticEngine, StaticKind};
use h2o::exec::CompileCostModel;
use h2o::prelude::*;
use h2o::workload::micro::{QueryGen, Template};
use std::time::Instant;

fn main() {
    let n_attrs = 250;
    let rows = 120_000;
    let schema = Schema::with_width(n_attrs).into_shared();
    let columns = h2o::workload::gen_columns(n_attrs, rows, 3);

    let row_store = StaticEngine::new(
        schema.clone(),
        columns.clone(),
        StaticKind::RowStore,
        CompileCostModel::ZERO,
    )
    .unwrap();
    let col_store = StaticEngine::new(
        schema.clone(),
        columns.clone(),
        StaticKind::ColumnStore,
        CompileCostModel::ZERO,
    )
    .unwrap();
    let h2o_engine = H2oEngine::new(
        Relation::columnar(schema, columns).unwrap(),
        EngineConfig::default(),
    );

    println!("projectivity sweep over a {n_attrs}-attribute table ({rows} rows):\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "attrs", "row-store", "col-store", "H2O"
    );
    for pct in [2usize, 20, 50, 80, 100] {
        let k = (n_attrs * pct / 100).max(2);
        let attrs: Vec<AttrId> = (0..k as u32).map(AttrId).collect();
        let (q, sel) = QueryGen::build(Template::Aggregation, &attrs[1..], &attrs[..1], 0.4);

        let time_engine = |f: &mut dyn FnMut() -> QueryResult| {
            let _ = f(); // warm
            let t = Instant::now();
            let out = f();
            (out, t.elapsed().as_secs_f64())
        };
        let (a, t_row) = time_engine(&mut || row_store.execute(&q).unwrap());
        let (b, t_col) = time_engine(&mut || col_store.execute(&q).unwrap());
        // H2O sees the query several times (as a workload would repeat it),
        // so its adaptation can kick in.
        let mut t_h2o = 0.0;
        let mut c = None;
        for _ in 0..3 {
            let t = Instant::now();
            c = Some(h2o_engine.run(Request::query(&q).hint(sel)).unwrap().result);
            t_h2o = t.elapsed().as_secs_f64();
        }
        let c = c.unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(b.fingerprint(), c.fingerprint());
        println!("{:>5}% {t_row:>11.4}s {t_col:>11.4}s {t_h2o:>11.4}s", pct);
    }

    println!(
        "\nH2O: {} layouts created, {} groups in catalog",
        h2o_engine.stats().layouts_created,
        h2o_engine.catalog().group_count()
    );
}
