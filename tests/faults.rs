//! Chaos differential suite: seeded fault injection against the whole
//! engine stack (`--features failpoints`).
//!
//! The fault-tolerance contract under test:
//!
//! * the process **never aborts** — injected panics surface as typed
//!   [`EngineError::ExecutionPanicked`] at the engine boundary;
//! * every query that *completes* is bit-identical to the interpreter on
//!   the snapshot it ran against, no matter which faults fired around it;
//! * the published catalog is never torn — after any fault, every group
//!   still covers the schema and is row-aligned;
//! * pending advice never describes an already-materialized layout once
//!   the engine is quiescent;
//! * the supervised reorganizer resumes pumping after every panic.
//!
//! The fault schedule is a pure function of `H2O_FAULT_SEED` (default
//! below) and per-site hit indices, so a CI failure replays locally with
//! the same seed. Failpoint state is process-global: every test in this
//! binary serializes on one lock and disarms on entry.

#![cfg(feature = "failpoints")]

use h2o_core::{CancelToken, EngineConfig, EngineError, H2oEngine, Request};
use h2o_cost::AccessPattern;
use h2o_exec::{compile, execute_with_policy_cancel, AccessPlan, ExecError, ExecPolicy, Strategy};
use h2o_expr::{interpret, Aggregate, Conjunction, Expr, Predicate, Query};
use h2o_storage::failpoints as fp;
use h2o_storage::{AttrId, CatalogSnapshot, Relation, Schema};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Deterministic seed for the fault schedule; override with
/// `H2O_FAULT_SEED` to explore other schedules (CI pins one).
fn fault_seed() -> u64 {
    std::env::var("H2O_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0xFA17_5EED)
}

/// Failpoint state is process-global; tests serialize on this.
fn chaos_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Silences the panic hook for *injected* faults (they are the point of
/// this suite and would otherwise print hundreds of backtraces) while
/// passing every genuine panic — including test assertions — through to
/// the default hook.
fn install_filtering_hook() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let msg = p
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| p.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(fp::PANIC_PREFIX) {
                default(info);
            }
        }));
    });
}

const ATTRS: usize = 16;

fn chaos_engine(rows: usize, mut cfg: EngineConfig) -> H2oEngine {
    // Small morsels + zero serial threshold: every query exercises the
    // morsel scheduler (and its panic isolation), not just big ones.
    cfg.parallelism = Some(3);
    cfg.morsel_rows = 256;
    cfg.parallel_row_threshold = 0;
    cfg.window.initial = 8;
    cfg.window.min = 4;
    let schema = Schema::with_width(ATTRS).into_shared();
    let cols: Vec<Vec<i64>> = (0..ATTRS)
        .map(|k| {
            (0..rows)
                .map(|r| {
                    let v = (((k * 131 + r * 31) % 2001) as i64) - 1000;
                    if k == 0 {
                        v.rem_euclid(8) // low-cardinality group key
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    H2oEngine::new(Relation::columnar(schema, cols).unwrap(), cfg)
}

fn random_query(rng: &mut SmallRng) -> Query {
    let attr = |rng: &mut SmallRng| rng.gen_range(0..ATTRS as u32);
    let bound = rng.gen_range(-900i64..900);
    let (a1, a2, a3) = (attr(rng), attr(rng), attr(rng));
    match rng.gen_range(0u32..3) {
        0 => Query::project(
            [Expr::sum_of([AttrId(a1), AttrId(a2)])],
            Conjunction::of([Predicate::lt(a3, bound)]),
        )
        .unwrap(),
        1 => Query::aggregate(
            [Aggregate::sum(Expr::col(a1)), Aggregate::count()],
            Conjunction::of([Predicate::gt(a2, bound)]),
        )
        .unwrap(),
        _ => Query::grouped(
            [Expr::col(0u32)],
            [Aggregate::max(Expr::col(a1)), Aggregate::count()],
            Conjunction::of([Predicate::lt(a2, bound)]),
        )
        .unwrap(),
    }
}

fn assert_untorn(snap: &CatalogSnapshot, ctx: &str) {
    assert!(
        snap.covers_schema(),
        "{ctx}: catalog no longer covers schema"
    );
    for g in snap.groups() {
        assert_eq!(
            g.rows(),
            snap.rows(),
            "{ctx}: torn catalog — group out of row alignment"
        );
    }
}

/// Asserts an engine failure is one of the *typed* fault outcomes; any
/// other error (or an uncaught panic) fails the suite.
fn assert_typed_fault(e: &EngineError, ctx: &str) {
    match e {
        EngineError::ExecutionPanicked { payload } => assert!(
            payload.starts_with(fp::PANIC_PREFIX),
            "{ctx}: panic was not an injected fault: {payload:?}"
        ),
        EngineError::Cancelled | EngineError::Timeout => {}
        other => panic!("{ctx}: untyped failure under fault injection: {other}"),
    }
}

/// One mixed operation against the engine. Returns whether a differential
/// query completed.
fn chaos_step(e: &H2oEngine, rng: &mut SmallRng, ctx: &str) -> bool {
    let mut completed = false;
    match rng.gen_range(0u32..10) {
        // Differential read: a completed query must match the interpreter
        // on its own snapshot bit-for-bit.
        0..=5 => {
            let q = random_query(rng);
            match e.run(Request::query(&q)) {
                Ok(out) => {
                    let (snap, got) = (out.snapshot.primary(), out.result);
                    let want = interpret(snap, &q).unwrap();
                    assert_eq!(
                        got.fingerprint(),
                        want.fingerprint(),
                        "{ctx}: completed query diverged from oracle: {q}"
                    );
                    completed = true;
                }
                Err(err) => assert_typed_fault(&err, ctx),
            }
        }
        // Cancellation: a pre-cancelled token yields Cancelled (or an
        // injected panic that struck before the first poll).
        6 => {
            let q = random_query(rng);
            let t = CancelToken::new();
            t.cancel();
            match e.run(Request::query(&q).cancel(&t)) {
                Ok(_) => panic!("{ctx}: pre-cancelled token returned a result"),
                Err(EngineError::Cancelled) => {}
                Err(err) => assert_typed_fault(&err, ctx),
            }
        }
        // Deadline expiry: an already-expired deadline yields Timeout.
        7 => {
            let q = random_query(rng);
            match e.run(Request::query(&q).deadline(Duration::ZERO)) {
                Ok(_) => panic!("{ctx}: zero deadline returned a result"),
                Err(EngineError::Timeout) => {}
                Err(err) => assert_typed_fault(&err, ctx),
            }
        }
        // Write: a failed batch must be invisible (COW abandoned).
        _ => {
            let rows_before = e.catalog().rows();
            let batch: Vec<Vec<i64>> = (0..rng.gen_range(1usize..40))
                .map(|_| (0..ATTRS).map(|_| rng.gen_range(-1000i64..1000)).collect())
                .collect();
            match e.insert(&batch) {
                Ok(()) => {}
                Err(err) => {
                    assert_typed_fault(&err, ctx);
                    assert_eq!(
                        e.catalog().rows(),
                        rows_before,
                        "{ctx}: failed insert published rows"
                    );
                }
            }
        }
    }
    assert_untorn(&e.snapshot(), ctx);
    completed
}

/// After the storm: engine quiescent, faults disarmed. The catalog is
/// untorn, pending advice describes only absent layouts, and the engine
/// still answers correctly.
fn assert_quiescent_invariants(e: &H2oEngine, rng: &mut SmallRng, ctx: &str) {
    e.maintain();
    let snap = e.snapshot();
    assert_untorn(&snap, ctx);
    for spec in e.pending() {
        assert!(
            snap.find_exact(&spec.attrs).is_none(),
            "{ctx}: pending advice for an already-materialized layout {spec:?}"
        );
    }
    for i in 0..10 {
        let q = random_query(rng);
        let out = e.run(Request::query(&q)).unwrap();
        let (snap, got) = (out.snapshot.primary(), out.result);
        let want = interpret(snap, &q).unwrap();
        assert_eq!(
            got.fingerprint(),
            want.fingerprint(),
            "{ctx}: post-chaos query {i} diverged: {q}"
        );
    }
}

/// Lazy-adaptation engine (reorganization fused onto the query path)
/// under a probabilistic storm across every failpoint site.
#[test]
fn chaos_lazy_engine_differential() {
    let _g = chaos_lock().lock().unwrap_or_else(|p| p.into_inner());
    install_filtering_hook();
    fp::disarm_all();
    let seed = fault_seed();
    let mut rng = SmallRng::seed_from_u64(seed);
    let e = chaos_engine(4000, EngineConfig::no_compile_latency());
    fp::arm_all_probability(seed, 0.004);

    let mut completed = 0u64;
    let mut iters = 0u64;
    while fp::fired_total() < 60 && iters < 4000 {
        iters += 1;
        if chaos_step(&e, &mut rng, "lazy chaos") {
            completed += 1;
        }
    }
    let injected = fp::fired_total();
    fp::disarm_all();
    eprintln!(
        "lazy chaos: seed={seed:#x} iters={iters} completed={completed} faults={injected} \
         stats={:?}",
        e.stats()
    );
    assert!(
        injected >= 60,
        "storm must actually inject faults (got {injected} in {iters} ops)"
    );
    assert!(completed >= 50, "storm must also complete queries");
    let s = e.stats();
    assert!(s.queries_panicked >= 1, "panics must be counted: {s:?}");
    assert_quiescent_invariants(&e, &mut rng, "lazy chaos");
}

/// Background-reorg engine with the supervised reorganizer thread under
/// the same storm, then a deterministic build-phase panic: the supervisor
/// must absorb every panic and finish the interrupted round.
#[test]
fn chaos_supervised_reorganizer_recovers() {
    let _g = chaos_lock().lock().unwrap_or_else(|p| p.into_inner());
    install_filtering_hook();
    fp::disarm_all();
    let seed = fault_seed() ^ 0x0B5E_55ED;
    let mut rng = SmallRng::seed_from_u64(seed);
    let e = Arc::new(chaos_engine(4000, EngineConfig::background()));
    let mut h = e.spawn_reorganizer(Duration::from_millis(1)).unwrap();

    // Phase 1: probabilistic storm with the supervisor pumping alongside.
    fp::arm_all_probability(seed, 0.004);
    let mut iters = 0u64;
    while fp::fired_total() < 60 && iters < 4000 {
        iters += 1;
        chaos_step(&e, &mut rng, "supervised chaos");
        h.nudge();
    }
    let injected = fp::fired_total();
    assert!(
        injected >= 60,
        "storm must actually inject faults (got {injected} in {iters} ops)"
    );
    fp::disarm_all();

    // Phase 2: a deterministic panic in the *next* background build. The
    // nth-hit failpoint self-disarms when it fires, so the retry after the
    // supervisor's backoff must complete the round.
    let panics_before = h.status().panics;
    let built_before = e.stats().reorgs_completed;
    fp::arm_nth("reorg_build", 1);
    let deadline = Instant::now() + Duration::from_secs(30);
    'drive: loop {
        for i in 0..30 {
            let q = Query::project(
                [Expr::sum_of([AttrId(9), AttrId(10), AttrId(11)])],
                Conjunction::of([Predicate::lt(12u32, (i % 5) * 100 - 200)]),
            )
            .unwrap();
            match e.run(Request::query(&q)) {
                Ok(_) | Err(EngineError::ExecutionPanicked { .. }) => {}
                Err(other) => panic!("drive query failed: {other}"),
            }
            h.nudge();
        }
        let st = h.status();
        if st.panics > panics_before && e.stats().reorgs_completed > built_before {
            break 'drive;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor did not recover in time: {st:?} stats={:?}",
            e.stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let st = h.status();
    assert!(st.alive, "supervisor thread must still be running: {st:?}");
    assert!(
        st.restarts >= st.panics.saturating_sub(1),
        "supervisor must resume after every panic: {st:?}"
    );
    let s = e.stats();
    assert!(s.reorg_panics >= st.panics.min(1), "stats: {s:?}");
    h.stop();
    assert!(!h.status().alive);
    fp::disarm_all();
    assert_quiescent_invariants(&e, &mut rng, "supervised chaos");
}

/// Strategy-pinned sweep: all three kernel strategies, serial and
/// parallel, under morsel-level faults, cancellation and deadlines. Every
/// completed run is bit-identical to the interpreter.
#[test]
fn chaos_all_strategies_cancel_and_panic() {
    let _g = chaos_lock().lock().unwrap_or_else(|p| p.into_inner());
    install_filtering_hook();
    fp::disarm_all();
    let seed = fault_seed() ^ 0x57A7_E61E;
    let e = chaos_engine(30_000, EngineConfig::non_adaptive());
    let snap = e.snapshot();
    let q = Query::project(
        [Expr::sum_of([AttrId(1), AttrId(2), AttrId(3)])],
        Conjunction::of([Predicate::lt(4u32, 250)]),
    )
    .unwrap();
    let want = interpret(&snap, &q).unwrap();
    let (base_plan, _) = e.plan(&AccessPattern::of(&q, 0.5)).unwrap();
    let policies = [
        ExecPolicy {
            parallelism: Some(1),
            morsel_rows: 256,
            serial_threshold: usize::MAX,
        },
        ExecPolicy {
            parallelism: Some(4),
            morsel_rows: 256,
            serial_threshold: 0,
        },
    ];
    let mut injected = 0u64;
    let mut completed = 0u64;
    for strategy in Strategy::ALL {
        let plan = AccessPlan::new(base_plan.layouts.clone(), strategy);
        let op = match compile(&snap, &plan, &q) {
            Ok(op) => op,
            Err(_) => continue, // strategy not applicable to this cover
        };
        for policy in &policies {
            // Cooperative stops are typed per reason.
            let cancelled = CancelToken::new();
            cancelled.cancel();
            assert_eq!(
                execute_with_policy_cancel(&snap, &op, policy, &cancelled).unwrap_err(),
                ExecError::Cancelled,
                "{} cancelled",
                strategy.name()
            );
            let expired = CancelToken::with_deadline(Duration::ZERO);
            assert_eq!(
                execute_with_policy_cancel(&snap, &op, policy, &expired).unwrap_err(),
                ExecError::DeadlineExpired,
                "{} expired",
                strategy.name()
            );
            // Probabilistic morsel faults: completed runs stay
            // bit-identical, fired runs panic with the injected prefix.
            fp::disarm_all();
            fp::arm_probability("morsel_start", seed ^ strategy as u64, 0.05);
            for _ in 0..30 {
                let live = CancelToken::new();
                match catch_unwind(AssertUnwindSafe(|| {
                    execute_with_policy_cancel(&snap, &op, policy, &live)
                })) {
                    Ok(Ok((got, _))) => {
                        completed += 1;
                        assert_eq!(
                            got.fingerprint(),
                            want.fingerprint(),
                            "{} completed run diverged",
                            strategy.name()
                        );
                    }
                    Ok(Err(err)) => panic!("{}: unexpected error {err}", strategy.name()),
                    Err(payload) => {
                        injected += 1;
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .unwrap_or_default();
                        assert!(
                            msg.starts_with(fp::PANIC_PREFIX),
                            "{}: genuine panic {msg:?}",
                            strategy.name()
                        );
                    }
                }
            }
            fp::disarm_all();
        }
    }
    eprintln!("strategy chaos: completed={completed} injected={injected}");
    assert!(injected >= 10, "morsel faults must fire ({injected})");
    assert!(completed >= 20, "runs must also complete ({completed})");
}
