//! Multi-relation differential suite: **every hash-join execution path
//! returns the bit-identical answer of the nested-loop interpreter.**
//!
//! Sweeps all three execution strategies × serial/parallel policies ×
//! segmented/monolithic layouts × both build sides against
//! [`interpret_join`], proptests random typed relations (key skew, match
//! rate, empty and fully-selective sides), replays an
//! `H2O_STRESS_SEED`-seeded sweep so CI failures reproduce locally, and
//! pins that a join-heavy workload converges the adaptive engine onto a
//! key+payload column group.

use h2o::core::{EngineConfig, H2oEngine};
use h2o::exec::{compile_join, execute_join_with_policy, AccessPlan, ExecPolicy, Strategy};
use h2o::expr::{check_join, interpret_join, JoinQuery, Side};
use h2o::prelude::*;
use h2o::storage::LogicalType;
use h2o::workload::{gen_f64_column, gen_fk_column, skyserver_join_workload};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Fixed default; `H2O_STRESS_SEED` overrides so CI failures replay.
fn stress_seed() -> u64 {
    std::env::var("H2O_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBEEF_CAFE)
}

fn photo_schema() -> Arc<Schema> {
    Schema::typed([
        ("objID", LogicalType::I64),
        ("ra", LogicalType::F64),
        ("mag", LogicalType::F64),
        ("flags", LogicalType::I64),
    ])
    .into_shared()
}

fn spec_schema() -> Arc<Schema> {
    Schema::typed([
        ("bestObjID", LogicalType::I64),
        ("z", LogicalType::F64),
        ("specClass", LogicalType::I64),
    ])
    .into_shared()
}

/// Typed photo/spec columns: distinct photo keys, a skewed foreign-key
/// column with the requested match rate, dyadic-grid `f64` payloads (so
/// any accumulation order sums exactly — the cross-build-side fingerprint
/// comparisons rely on it).
fn photo_spec_columns(
    photo_rows: usize,
    spec_rows: usize,
    match_rate: f64,
    skew: f64,
    seed: u64,
) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let keys: Vec<Value> = (0..photo_rows as Value).map(|i| i * 7 - 1000).collect();
    let photo = vec![
        keys.clone(),
        gen_f64_column(photo_rows, 0.0, 360.0, seed ^ 1),
        gen_f64_column(photo_rows, 10.0, 30.0, seed ^ 2),
        (0..photo_rows).map(|i| ((i * 13) % 32) as Value).collect(),
    ];
    let parent: &[Value] = if keys.is_empty() { &[-1] } else { &keys };
    let spec = vec![
        gen_fk_column(spec_rows, parent, match_rate, skew, seed ^ 3),
        gen_f64_column(spec_rows, 0.0, 7.0, seed ^ 4),
        (0..spec_rows).map(|i| ((i * 5) % 6) as Value).collect(),
    ];
    (photo, spec)
}

/// The five join shapes the sweep runs: filtered projection, one-sided
/// filters, aggregate, grouped rollup, and an empty build side.
fn join_queries() -> Vec<(&'static str, JoinQuery)> {
    let b = || JoinQuery::builder(("photo", photo_schema()), ("spec", spec_schema()));
    let mut out = Vec::new();
    {
        let q = b();
        let ra = q.col("ra").unwrap();
        let z = q.col("z").unwrap();
        out.push((
            "project-two-filters",
            q.on("objID", "bestObjID")
                .unwrap()
                .filter_left(Conjunction::of([Predicate::lt(2u32, 20.0)]))
                .filter_right(Conjunction::of([Predicate::lt(1u32, 3.5)]))
                .project([ra, z])
                .unwrap(),
        ));
    }
    {
        let q = b();
        let mag = q.col("mag").unwrap();
        let z = q.col("z").unwrap();
        out.push((
            "project-no-filter",
            q.on("objID", "bestObjID")
                .unwrap()
                .project([mag.clone().add(z.mul(Expr::lit(2.0))), mag])
                .unwrap(),
        ));
    }
    {
        let q = b();
        let z = q.col("z").unwrap();
        out.push((
            "aggregate",
            q.on("objID", "bestObjID")
                .unwrap()
                .filter_left(Conjunction::of([Predicate::lt(3u32, 16)]))
                .aggregate([
                    Aggregate::sum(z.clone()),
                    Aggregate::max(z),
                    Aggregate::count(),
                ])
                .unwrap(),
        ));
    }
    {
        let q = b();
        let flags = q.col("flags").unwrap();
        let cls = q.col("specClass").unwrap();
        let z = q.col("z").unwrap();
        out.push((
            "grouped-rollup",
            q.on("objID", "bestObjID")
                .unwrap()
                .filter_right(Conjunction::of([Predicate::lt(1u32, 5.0)]))
                .grouped([flags, cls], [Aggregate::sum(z), Aggregate::count()])
                .unwrap(),
        ));
    }
    {
        let q = b();
        let ra = q.col("ra").unwrap();
        out.push((
            "empty-build-side",
            q.on("objID", "bestObjID")
                .unwrap()
                // mag domain is [10, 30): nothing qualifies.
                .filter_left(Conjunction::of([Predicate::lt(2u32, 0.0)]))
                .project([ra])
                .unwrap(),
        ));
    }
    out
}

fn policies() -> Vec<(&'static str, ExecPolicy)> {
    let p = |threads: usize, morsel: usize| ExecPolicy {
        parallelism: Some(threads),
        morsel_rows: morsel,
        serial_threshold: 0,
    };
    vec![
        ("serial-explicit", p(1, 1_000)),
        ("four-workers", p(4, 256)),
        ("many-tiny-morsels", p(4, 64)),
        ("eight-workers-odd-morsel", p(8, 999)),
    ]
}

/// All three strategies × serial/parallel × segmented/monolithic × both
/// build sides, fingerprint-identical to the interpreter.
#[test]
fn join_strategy_layout_parallelism_sweep() {
    let (photo_cols, spec_cols) = photo_spec_columns(3_000, 2_000, 0.8, 0.4, 17);
    for (layout, seg_shift) in [("segmented", 6u32), ("monolithic", 20u32)] {
        let photo = Relation::partitioned_with_shift(
            photo_schema(),
            photo_cols.clone(),
            vec![vec![AttrId(0), AttrId(1)], vec![AttrId(2)], vec![AttrId(3)]],
            seg_shift,
        )
        .unwrap();
        let spec = Relation::partitioned_with_shift(
            spec_schema(),
            spec_cols.clone(),
            (0..3).map(|i| vec![AttrId(i)]).collect(),
            seg_shift,
        )
        .unwrap();
        for (shape, q) in join_queries() {
            let checked = check_join(&q).unwrap();
            let want = interpret_join(photo.catalog(), spec.catalog(), &q)
                .unwrap()
                .fingerprint();
            for strategy in Strategy::ALL {
                let lplan = AccessPlan::new(photo.catalog().layout_ids(), strategy);
                let rplan = AccessPlan::new(spec.catalog().layout_ids(), strategy);
                for build_is_left in [true, false] {
                    let op = compile_join(
                        photo.catalog(),
                        spec.catalog(),
                        &lplan,
                        &rplan,
                        &q,
                        &checked,
                        build_is_left,
                    )
                    .unwrap();
                    // Serial and parallel runs of the same operator must
                    // return identical bytes, not just fingerprints.
                    let (serial, _) = execute_join_with_policy(
                        photo.catalog(),
                        spec.catalog(),
                        &op,
                        &ExecPolicy::serial(),
                    )
                    .unwrap();
                    assert_eq!(
                        serial.fingerprint(),
                        want,
                        "{layout} {shape} {} build_is_left={build_is_left}",
                        strategy.name()
                    );
                    for (pname, policy) in policies() {
                        let (par, _) =
                            execute_join_with_policy(photo.catalog(), spec.catalog(), &op, &policy)
                                .unwrap();
                        assert_eq!(
                            par.data(),
                            serial.data(),
                            "{layout} {shape} {} {pname} build_is_left={build_is_left}",
                            strategy.name()
                        );
                    }
                }
            }
        }
    }
}

/// The adaptive engine agrees with the interpreter on the same snapshot,
/// for both greedy and forced build orders. `ctx` labels failures (the
/// stress sweep passes its replay seed through it).
fn engine_agrees(
    photo_rows: usize,
    spec_rows: usize,
    match_rate: f64,
    skew: f64,
    seed: u64,
    ctx: &str,
) {
    let (photo_cols, spec_cols) = photo_spec_columns(photo_rows, spec_rows, match_rate, skew, seed);
    let mut cfg = EngineConfig::no_compile_latency();
    cfg.window.initial = 8;
    cfg.window.min = 4;
    let e = H2oEngine::new(Relation::columnar(photo_schema(), photo_cols).unwrap(), cfg);
    // The photo side is the engine's primary relation; bind spec as a
    // secondary. Queries resolve by name, so the fixture queries' left
    // side is rebound below from "photo" to the primary name "R".
    e.add_relation(
        "spec",
        Relation::columnar(spec_schema(), spec_cols).unwrap(),
    )
    .unwrap();
    for (shape, q) in join_queries() {
        let q = {
            let mut jb = JoinQuery::builder(("R", photo_schema()), ("spec", spec_schema()));
            for &(l, r) in q.on() {
                jb = jb.on_attrs(l, r);
            }
            jb = jb.filter_left(q.filter(Side::Left).clone());
            jb = jb.filter_right(q.filter(Side::Right).clone());
            if q.is_grouped() {
                jb.grouped(q.group_by().to_vec(), q.aggregates().to_vec())
                    .unwrap()
            } else if q.is_aggregate() {
                jb.aggregate(q.aggregates().to_vec()).unwrap()
            } else {
                jb.project(q.projections().to_vec()).unwrap()
            }
        };
        let out = e.run(Request::join(&q)).unwrap();
        let (db, got) = (out.snapshot.db().unwrap(), out.result);
        let want = interpret_join(db.relation("R").unwrap(), db.relation("spec").unwrap(), &q)
            .unwrap()
            .fingerprint();
        assert_eq!(got.fingerprint(), want, "shape {shape} greedy ({ctx})");
        for side in [Side::Left, Side::Right] {
            let forced = e.run(Request::join(&q).build_side(side)).unwrap().result;
            assert_eq!(
                forced.fingerprint(),
                want,
                "shape {shape} forced build side {side:?} ({ctx})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random typed relations — any size (including empty sides), any key
    /// skew and match rate — agree between the adaptive engine (greedy and
    /// both forced build orders) and the interpreter.
    #[test]
    fn random_joins_agree(
        seed in 0u64..1000,
        photo_rows in 0usize..300,
        spec_rows in 0usize..300,
        match_rate in 0.0f64..=1.0,
        skew in 0.0f64..=1.0,
    ) {
        engine_agrees(photo_rows, spec_rows, match_rate, skew, seed, "proptest");
    }
}

/// The `H2O_STRESS_SEED`-seeded replay sweep (CI runs it with a fixed
/// seed; failures replay locally with the same value).
#[test]
fn stress_seed_replay_sweep() {
    let seed = stress_seed();
    let mut rng = SmallRng::seed_from_u64(seed);
    for round in 0..4 {
        let photo_rows = rng.gen_range(0..2_000);
        let spec_rows = rng.gen_range(0..2_000);
        let match_rate = rng.gen_range(0..=100) as f64 / 100.0;
        let skew = rng.gen_range(0..=100) as f64 / 100.0;
        let case_seed = rng.gen_range(0..u64::MAX);
        engine_agrees(
            photo_rows,
            spec_rows,
            match_rate,
            skew,
            case_seed,
            &format!("round {round}, H2O_STRESS_SEED={seed}"),
        );
    }
}

/// A join-heavy SkyServer workload converges the adaptive engine onto a
/// key+payload column group on the primary (photo) relation — the adviser
/// sees join keys and gathered payload as hot select-clause attributes.
#[test]
fn join_workload_converges_to_key_payload_group() {
    let w = skyserver_join_workload(2_000, 1_500, 80, 0.85, 0.3, 21);
    let mut cfg = EngineConfig::no_compile_latency();
    cfg.window.initial = 8;
    cfg.window.min = 4;
    let e = H2oEngine::new(
        Relation::columnar(w.photo.schema.clone(), w.photo_columns.clone()).unwrap(),
        cfg,
    );
    e.add_relation(
        "spec",
        Relation::columnar(w.spec_schema.clone(), w.spec_columns.clone()).unwrap(),
    )
    .unwrap();
    for (i, q) in w.queries.iter().enumerate() {
        let out = e.run(Request::join(q)).unwrap();
        let (db, got) = (out.snapshot.db().unwrap(), out.result);
        let want =
            interpret_join(db.relation("R").unwrap(), db.relation("spec").unwrap(), q).unwrap();
        assert_eq!(got.fingerprint(), want.fingerprint(), "workload query {i}");
    }
    let stats = e.stats();
    assert!(stats.adaptations >= 1, "window must trigger adaptation");
    assert!(
        stats.layouts_created >= 1,
        "join workload must materialize a layout; stats: {stats:?}"
    );
    // Some materialized group must put the join key next to gathered
    // payload — a multi-attribute group containing objID.
    let obj_id = w.photo.schema.attr_by_name("objID").unwrap();
    let snap = e.catalog();
    let key_payload_group = snap.layout_ids().iter().any(|&id| {
        let g = snap.group(id).unwrap();
        g.width() > 1 && g.attr_set().contains(obj_id)
    });
    assert!(
        key_payload_group,
        "expected a multi-attribute group containing the join key"
    );
}

/// A deadline that expires while a join is executing (past the entry
/// pre-check, during build/probe work) must surface as
/// [`EngineError::Timeout`] and publish nothing — no join report, no
/// layout advice from the aborted run. Deadlines are found adaptively:
/// start from the measured unrestricted runtime and halve until one
/// trips mid-run, asserting every completed run along the way stays
/// bit-identical. The floor (50µs) cannot complete a 30k×30k join, so
/// the loop always terminates in a timeout without ever flaking.
#[test]
fn join_deadline_expiring_mid_run_types_timeout_and_publishes_nothing() {
    use h2o::core::EngineError;
    use std::time::{Duration, Instant};

    let (photo_cols, spec_cols) = photo_spec_columns(30_000, 30_000, 0.9, 0.5, 77);
    let e = H2oEngine::new(
        Relation::columnar(photo_schema(), photo_cols).unwrap(),
        EngineConfig::no_compile_latency(),
    );
    e.add_relation(
        "spec",
        Relation::columnar(spec_schema(), spec_cols).unwrap(),
    )
    .unwrap();
    let q = {
        let b = JoinQuery::builder(("R", photo_schema()), ("spec", spec_schema()));
        let flags = b.col("flags").unwrap();
        let cls = b.col("specClass").unwrap();
        let z = b.col("z").unwrap();
        b.on("objID", "bestObjID")
            .unwrap()
            .grouped([flags, cls], [Aggregate::sum(z), Aggregate::count()])
            .unwrap()
    };

    let t0 = Instant::now();
    let want = e.run(Request::join(&q)).unwrap().result.fingerprint();
    let full = t0.elapsed();

    let floor = Duration::from_micros(50);
    let mut deadline = (full / 2).max(floor);
    let mut timed_out = false;
    for _ in 0..64 {
        let report_before = e.last_join_report();
        let timeouts_before = e.stats().queries_timed_out;
        match e.run(Request::join(&q).deadline(deadline)) {
            Ok(out) => assert_eq!(
                out.result.fingerprint(),
                want,
                "a run that beats its deadline must stay exact"
            ),
            Err(EngineError::Timeout) => {
                timed_out = true;
                assert_eq!(
                    e.stats().queries_timed_out,
                    timeouts_before + 1,
                    "timeout must be typed and counted"
                );
                assert_eq!(
                    e.last_join_report(),
                    report_before,
                    "a timed-out join must publish nothing"
                );
                break;
            }
            Err(other) => panic!("expected Timeout, got: {other}"),
        }
        deadline = (deadline / 2).max(floor);
    }
    assert!(
        timed_out,
        "halving deadlines must eventually expire mid-join"
    );

    // The engine is unharmed: an unrestricted rerun still matches the
    // nested-loop interpreter bit-for-bit.
    let out = e.run(Request::join(&q)).unwrap();
    let db = out.snapshot.db().unwrap();
    let oracle = interpret_join(db.relation("R").unwrap(), db.relation("spec").unwrap(), &q)
        .unwrap()
        .fingerprint();
    assert_eq!(out.result.fingerprint(), want);
    assert_eq!(out.result.fingerprint(), oracle);
}
