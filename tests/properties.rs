//! Property-based invariants over the storage and execution substrates.
#![allow(clippy::needless_range_loop)]

use h2o::cost::{AccessPattern, CostModel, GroupSpec};
use h2o::exec::{compile, execute, reorg, AccessPlan, Strategy as ExecStrategy};
use h2o::expr::interp::interpret_over;
use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::storage::LayoutCatalog;
use proptest::prelude::*;

/// Strategy: a small relation as raw columns.
fn arb_columns() -> impl Strategy<Value = Vec<Vec<i64>>> {
    (1usize..6, 0usize..60).prop_flat_map(|(n_attrs, rows)| {
        proptest::collection::vec(
            proptest::collection::vec(-1000i64..1000, rows..=rows),
            n_attrs..=n_attrs,
        )
    })
}

/// Strategy: a random partition of `n` attributes (as index assignments).
fn arb_partition(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..n.max(1), n..=n)
}

fn build_partitioned(columns: &[Vec<i64>], assignment: &[usize]) -> Relation {
    let n = columns.len();
    let schema = Schema::with_width(n).into_shared();
    let mut groups: Vec<Vec<AttrId>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (attr, &block) in assignment.iter().enumerate() {
        match labels.iter().position(|&l| l == block) {
            Some(i) => groups[i].push(AttrId::from(attr)),
            None => {
                labels.push(block);
                groups.push(vec![AttrId::from(attr)]);
            }
        }
    }
    Relation::partitioned(schema, columns.to_vec(), groups).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reorganization preserves data: materializing any attribute subset
    /// from any partitioning yields exactly the source values.
    #[test]
    fn materialize_preserves_values(
        columns in arb_columns(),
        assignment_seed in arb_partition(6),
        pick in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let n = columns.len();
        let rel = build_partitioned(&columns, &assignment_seed[..n]);
        let attrs: Vec<AttrId> = (0..n)
            .filter(|&i| pick[i])
            .map(AttrId::from)
            .collect();
        prop_assume!(!attrs.is_empty());
        let group = reorg::materialize(rel.catalog(), &attrs).unwrap();
        for (pos, &a) in attrs.iter().enumerate() {
            for row in 0..rel.rows() {
                prop_assert_eq!(group.value(row, pos), columns[a.index()][row]);
            }
        }
    }

    /// The same query over any physical partitioning and any strategy
    /// equals the interpreter's answer.
    #[test]
    fn partitioning_is_transparent(
        columns in arb_columns(),
        assignment_seed in arb_partition(6),
        strategy_idx in 0usize..3,
        sel_value in -1000i64..1000,
    ) {
        let n = columns.len();
        let rel = build_partitioned(&columns, &assignment_seed[..n]);
        let q = Query::aggregate(
            [
                Aggregate::sum(Expr::col(0u32)),
                Aggregate::count(),
            ],
            Conjunction::of([Predicate::lt(AttrId::from(n - 1), sel_value)]),
        )
        .unwrap();
        let want = interpret(rel.catalog(), &q).unwrap();
        let plan = AccessPlan::new(rel.catalog().layout_ids(), ExecStrategy::ALL[strategy_idx]);
        let op = compile(rel.catalog(), &plan, &q).unwrap();
        let got = execute(rel.catalog(), &op).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Fused reorganization = offline materialization + interpreter answer.
    #[test]
    fn online_reorg_equals_offline(
        columns in arb_columns(),
        sel_value in -1000i64..1000,
    ) {
        let n = columns.len();
        let schema = Schema::with_width(n).into_shared();
        let rel = Relation::columnar(schema, columns).unwrap();
        let attrs: Vec<AttrId> = (0..n).map(AttrId::from).collect();
        let q = Query::project(
            [Expr::col(0u32)],
            Conjunction::of([Predicate::gt(AttrId::from(n - 1), sel_value)]),
        )
        .unwrap();
        let (group, result) = reorg::reorg_and_execute(rel.catalog(), &attrs, &q).unwrap();
        let offline = reorg::materialize(rel.catalog(), &attrs).unwrap();
        prop_assert_eq!(group.data(), offline.data());
        let want = interpret(rel.catalog(), &q).unwrap();
        prop_assert_eq!(result.fingerprint(), want.fingerprint());
    }

    /// The row-wise and column-wise offline builders agree bit-for-bit.
    #[test]
    fn rowwise_and_columnwise_builders_agree(
        columns in arb_columns(),
    ) {
        let n = columns.len();
        let schema = Schema::with_width(n).into_shared();
        let rel = Relation::columnar(schema, columns).unwrap();
        let attrs: Vec<AttrId> = (0..n).rev().map(AttrId::from).collect();
        let a = reorg::materialize(rel.catalog(), &attrs).unwrap();
        let b = reorg::materialize_rowwise(rel.catalog(), &attrs).unwrap();
        prop_assert_eq!(a.data(), b.data());
    }

    /// Interpreting over a tailored single group equals interpreting over
    /// the original columns (the oracle's soundness).
    #[test]
    fn tailored_group_is_transparent(
        columns in arb_columns(),
        sel_value in -1000i64..1000,
    ) {
        let n = columns.len();
        let schema = Schema::with_width(n).into_shared();
        let rel = Relation::columnar(schema.clone(), columns).unwrap();
        let q = Query::aggregate(
            [Aggregate::min(Expr::col(0u32))],
            Conjunction::of([Predicate::le(AttrId::from(n - 1), sel_value)]),
        )
        .unwrap();
        let attrs: Vec<AttrId> = q.all_attrs().to_vec();
        let group = reorg::materialize(rel.catalog(), &attrs).unwrap();
        let mut catalog = LayoutCatalog::new(schema, rel.rows());
        catalog.add_group(group, 0).unwrap();
        let via_group = interpret(&catalog, &q).unwrap();
        let via_columns = interpret(rel.catalog(), &q).unwrap();
        prop_assert_eq!(via_group, via_columns);
    }

    /// Cost model sanity: non-negative, monotone in rows, and covering
    /// more attributes never costs less under the same plan shape.
    #[test]
    fn cost_model_sane(
        k in 1usize..10,
        sel in 0.0f64..1.0,
        rows in 1usize..1_000_000,
    ) {
        let model = CostModel::default();
        let attrs: AttrSet = (0..k).collect();
        let pat = AccessPattern {
            select: attrs.clone(),
            where_: AttrSet::new(),
            selectivity: sel,
            output_width: 1,
            select_ops: k,
            is_aggregate: true,
        };
        let groups = vec![GroupSpec::new(attrs)];
        let c = model.best_cost(&pat, &groups, rows);
        prop_assert!(c.is_finite() && c >= 0.0);
        let c2 = model.best_cost(&pat, &groups, rows * 2);
        prop_assert!(c2 >= c);
    }

    /// The interpreter over an explicit cover equals the interpreter over
    /// the catalog's chosen cover.
    #[test]
    fn interpreter_cover_independence(
        columns in arb_columns(),
        assignment_seed in arb_partition(6),
    ) {
        let n = columns.len();
        let rel = build_partitioned(&columns, &assignment_seed[..n]);
        let q = Query::project(
            (0..n).map(|i| Expr::col(i as u32)),
            Conjunction::always(),
        )
        .unwrap();
        let via_catalog = interpret(rel.catalog(), &q).unwrap();
        let groups: Vec<_> = rel.catalog().groups().collect();
        let via_all = interpret_over(&groups, &q).unwrap();
        prop_assert_eq!(via_catalog.fingerprint(), via_all.fingerprint());
    }
}
