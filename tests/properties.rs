//! Property-based invariants over the storage and execution substrates.
#![allow(clippy::needless_range_loop)]

use h2o::cost::{AccessPattern, CostModel, GroupSpec};
use h2o::exec::{compile, execute, reorg, AccessPlan, Strategy as ExecStrategy};
use h2o::expr::interp::interpret_over;
use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::storage::LayoutCatalog;
use proptest::prelude::*;

/// Strategy: a small relation as raw columns.
fn arb_columns() -> impl Strategy<Value = Vec<Vec<i64>>> {
    (1usize..6, 0usize..60).prop_flat_map(|(n_attrs, rows)| {
        proptest::collection::vec(
            proptest::collection::vec(-1000i64..1000, rows..=rows),
            n_attrs..=n_attrs,
        )
    })
}

/// Strategy: a random partition of `n` attributes (as index assignments).
fn arb_partition(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..n.max(1), n..=n)
}

fn build_partitioned(columns: &[Vec<i64>], assignment: &[usize]) -> Relation {
    let n = columns.len();
    let schema = Schema::with_width(n).into_shared();
    let mut groups: Vec<Vec<AttrId>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (attr, &block) in assignment.iter().enumerate() {
        match labels.iter().position(|&l| l == block) {
            Some(i) => groups[i].push(AttrId::from(attr)),
            None => {
                labels.push(block);
                groups.push(vec![AttrId::from(attr)]);
            }
        }
    }
    Relation::partitioned(schema, columns.to_vec(), groups).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reorganization preserves data: materializing any attribute subset
    /// from any partitioning yields exactly the source values.
    #[test]
    fn materialize_preserves_values(
        columns in arb_columns(),
        assignment_seed in arb_partition(6),
        pick in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let n = columns.len();
        let rel = build_partitioned(&columns, &assignment_seed[..n]);
        let attrs: Vec<AttrId> = (0..n)
            .filter(|&i| pick[i])
            .map(AttrId::from)
            .collect();
        prop_assume!(!attrs.is_empty());
        let group = reorg::materialize(rel.catalog(), &attrs).unwrap();
        for (pos, &a) in attrs.iter().enumerate() {
            for row in 0..rel.rows() {
                prop_assert_eq!(group.value(row, pos), columns[a.index()][row]);
            }
        }
    }

    /// The same query over any physical partitioning and any strategy
    /// equals the interpreter's answer.
    #[test]
    fn partitioning_is_transparent(
        columns in arb_columns(),
        assignment_seed in arb_partition(6),
        strategy_idx in 0usize..3,
        sel_value in -1000i64..1000,
    ) {
        let n = columns.len();
        let rel = build_partitioned(&columns, &assignment_seed[..n]);
        let q = Query::aggregate(
            [
                Aggregate::sum(Expr::col(0u32)),
                Aggregate::count(),
            ],
            Conjunction::of([Predicate::lt(AttrId::from(n - 1), sel_value)]),
        )
        .unwrap();
        let want = interpret(rel.catalog(), &q).unwrap();
        let plan = AccessPlan::new(rel.catalog().layout_ids(), ExecStrategy::ALL[strategy_idx]);
        let op = compile(rel.catalog(), &plan, &q).unwrap();
        let got = execute(rel.catalog(), &op).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Fused reorganization = offline materialization + interpreter answer.
    #[test]
    fn online_reorg_equals_offline(
        columns in arb_columns(),
        sel_value in -1000i64..1000,
    ) {
        let n = columns.len();
        let schema = Schema::with_width(n).into_shared();
        let rel = Relation::columnar(schema, columns).unwrap();
        let attrs: Vec<AttrId> = (0..n).map(AttrId::from).collect();
        let q = Query::project(
            [Expr::col(0u32)],
            Conjunction::of([Predicate::gt(AttrId::from(n - 1), sel_value)]),
        )
        .unwrap();
        let (group, result) = reorg::reorg_and_execute(rel.catalog(), &attrs, &q).unwrap();
        let offline = reorg::materialize(rel.catalog(), &attrs).unwrap();
        prop_assert_eq!(group.collect_values(), offline.collect_values());
        let want = interpret(rel.catalog(), &q).unwrap();
        prop_assert_eq!(result.fingerprint(), want.fingerprint());
    }

    /// The row-wise and column-wise offline builders agree bit-for-bit.
    #[test]
    fn rowwise_and_columnwise_builders_agree(
        columns in arb_columns(),
    ) {
        let n = columns.len();
        let schema = Schema::with_width(n).into_shared();
        let rel = Relation::columnar(schema, columns).unwrap();
        let attrs: Vec<AttrId> = (0..n).rev().map(AttrId::from).collect();
        let a = reorg::materialize(rel.catalog(), &attrs).unwrap();
        let b = reorg::materialize_rowwise(rel.catalog(), &attrs).unwrap();
        prop_assert_eq!(a.collect_values(), b.collect_values());
    }

    /// Interpreting over a tailored single group equals interpreting over
    /// the original columns (the oracle's soundness).
    #[test]
    fn tailored_group_is_transparent(
        columns in arb_columns(),
        sel_value in -1000i64..1000,
    ) {
        let n = columns.len();
        let schema = Schema::with_width(n).into_shared();
        let rel = Relation::columnar(schema.clone(), columns).unwrap();
        let q = Query::aggregate(
            [Aggregate::min(Expr::col(0u32))],
            Conjunction::of([Predicate::le(AttrId::from(n - 1), sel_value)]),
        )
        .unwrap();
        let attrs: Vec<AttrId> = q.all_attrs().to_vec();
        let group = reorg::materialize(rel.catalog(), &attrs).unwrap();
        let mut catalog = LayoutCatalog::new(schema, rel.rows());
        catalog.add_group(group, 0).unwrap();
        let via_group = interpret(&catalog, &q).unwrap();
        let via_columns = interpret(rel.catalog(), &q).unwrap();
        prop_assert_eq!(via_group, via_columns);
    }

    /// Cost model sanity: non-negative, monotone in rows, and covering
    /// more attributes never costs less under the same plan shape.
    #[test]
    fn cost_model_sane(
        k in 1usize..10,
        sel in 0.0f64..1.0,
        rows in 1usize..1_000_000,
    ) {
        let model = CostModel::default();
        let attrs: AttrSet = (0..k).collect();
        let pat = AccessPattern {
            select: attrs.clone(),
            where_: AttrSet::new(),
            selectivity: sel,
            output_width: 1,
            select_ops: k,
            is_aggregate: true,
            is_grouped: false,
        };
        let groups = vec![GroupSpec::new(attrs)];
        let c = model.best_cost(&pat, &groups, rows);
        prop_assert!(c.is_finite() && c >= 0.0);
        let c2 = model.best_cost(&pat, &groups, rows * 2);
        prop_assert!(c2 >= c);
    }

    /// The interpreter over an explicit cover equals the interpreter over
    /// the catalog's chosen cover.
    #[test]
    fn interpreter_cover_independence(
        columns in arb_columns(),
        assignment_seed in arb_partition(6),
    ) {
        let n = columns.len();
        let rel = build_partitioned(&columns, &assignment_seed[..n]);
        let q = Query::project(
            (0..n).map(|i| Expr::col(i as u32)),
            Conjunction::always(),
        )
        .unwrap();
        let via_catalog = interpret(rel.catalog(), &q).unwrap();
        let groups: Vec<_> = rel.catalog().groups().collect();
        let via_all = interpret_over(&groups, &q).unwrap();
        prop_assert_eq!(via_catalog.fingerprint(), via_all.fingerprint());
    }
}

/// EWMA selectivity-feedback invariants (the engine's `sel_history`).
///
/// The engine smooths observed selectivities with an EWMA (`est' =
/// (est + observed) / 2`). Two properties pin it down: under a stationary
/// workload the estimate converges geometrically toward the true
/// selectivity, and under *any* query/insert sequence it can never leave
/// `[0, 1]`.
mod selectivity_feedback {
    use super::*;
    use h2o::core::{EngineConfig, H2oEngine};

    fn quiet_config() -> EngineConfig {
        let mut cfg = EngineConfig::no_compile_latency();
        // No adaptation interference: the window never completes.
        cfg.window.initial = 10_000;
        cfg.window.max = 10_000;
        cfg
    }

    fn engine_from(columns: &[Vec<i64>]) -> H2oEngine {
        let schema = Schema::with_width(columns.len()).into_shared();
        let rel = Relation::columnar(schema, columns.to_vec()).unwrap();
        H2oEngine::new(rel, quiet_config())
    }

    /// Like `arb_columns` but guaranteed non-empty (at least one row).
    fn arb_filled_columns() -> impl Strategy<Value = Vec<Vec<i64>>> {
        (1usize..6, 1usize..60).prop_flat_map(|(n_attrs, rows)| {
            proptest::collection::vec(
                proptest::collection::vec(-1000i64..1000, rows..=rows),
                n_attrs..=n_attrs,
            )
        })
    }

    fn filter_query(n_attrs: usize, attr: usize, threshold: i64) -> Query {
        Query::project(
            [Expr::col((attr % n_attrs) as u32)],
            Conjunction::of([Predicate::lt((attr % n_attrs) as u32, threshold)]),
        )
        .unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Stationary workload: the estimate halves its error every query,
        /// converging geometrically to the true selectivity — even when the
        /// history was seeded by an earlier phase with different data.
        #[test]
        fn ewma_converges_to_true_selectivity(
            columns in arb_filled_columns(),
            attr in 0usize..6,
            threshold in -1000i64..1000,
            shift in proptest::collection::vec(
                proptest::collection::vec(-1000i64..1000, 1..=6), 0..20),
            reps in 1usize..12,
        ) {
            let n = columns.len();
            let e = engine_from(&columns);
            let q = filter_query(n, attr, threshold);
            // Phase A seeds the history with the pre-shift selectivity.
            e.run(Request::query(&q)).unwrap();
            // Phase B: appended tuples change the true selectivity.
            let batch: Vec<Vec<i64>> = shift
                .iter()
                .map(|t| (0..n).map(|a| t[a % t.len()]).collect())
                .collect();
            if !batch.is_empty() {
                e.insert(&batch).unwrap();
            }
            let snap = e.snapshot();
            let truth =
                interpret(&snap, &q).unwrap().rows() as f64 / snap.rows() as f64;
            let mut err = (e.observed_selectivity(&q).unwrap() - truth).abs();
            for i in 0..reps {
                e.run(Request::query(&q)).unwrap();
                let est = e.observed_selectivity(&q).unwrap();
                let new_err = (est - truth).abs();
                prop_assert!(
                    new_err <= 0.5 * err + 1e-9,
                    "rep {i}: error must halve ({err} -> {new_err}, truth {truth})"
                );
                prop_assert!((0.0..=1.0).contains(&est));
                err = new_err;
            }
            prop_assert!(err <= 1.0 * 0.5f64.powi(reps as i32) + 1e-9);
        }

        /// Adversarial sequences — random filters, random constants,
        /// interleaved inserts, hint abuse — never push any stored estimate
        /// or any planning estimate outside [0, 1].
        #[test]
        fn ewma_stays_in_unit_interval_under_adversarial_sequences(
            columns in arb_filled_columns(),
            ops in proptest::collection::vec(
                (any::<bool>(), 0usize..6, -2000i64..2000, -10.0f64..10.0), 1..40),
        ) {
            let n = columns.len();
            let e = engine_from(&columns);
            for (do_insert, attr, threshold, hint) in ops {
                if do_insert {
                    e.insert(&[vec![threshold; n]]).unwrap();
                } else {
                    let q = filter_query(n, attr, threshold);
                    // Out-of-range hints must be clamped, not stored raw.
                    let req = if hint.is_finite() {
                        Request::query(&q).hint(hint)
                    } else {
                        Request::query(&q)
                    };
                    e.run(req).unwrap();
                    let report = e.last_report().unwrap();
                    prop_assert!(
                        (0.0..=1.0).contains(&report.selectivity_estimate),
                        "planning estimate escaped [0,1]: {}",
                        report.selectivity_estimate
                    );
                    if let Some(est) = e.observed_selectivity(&q) {
                        prop_assert!(
                            (0.0..=1.0).contains(&est),
                            "stored estimate escaped [0,1]: {est}"
                        );
                    }
                }
            }
        }
    }
}
