//! Differential suite for the vectorized (chunked-SIMD) kernel loops.
//!
//! The `kernels::simd` rewrite must be **bit-identical** to the scalar
//! reference bodies it replaced, across every place results could diverge:
//! lane-chunk boundaries (`rows % 8`), segment-run boundaries, zone-map
//! pruned runs, all three execution strategies, serial vs morsel-parallel
//! execution, `F64` fold order (including non-dyadic values whose sums are
//! inexact), and the capped runs a cancellation token induces at
//! `CANCEL_CHECK_ROWS` boundaries.

use h2o::exec::kernels::{colmajor, fused, selvector};
use h2o::exec::{
    compile, execute, execute_with_policy, execute_with_policy_cancel, AccessPlan, BoundAttr,
    CancelToken, ExecPolicy, GroupViews, Strategy,
};
use h2o::expr::agg::AggOp;
use h2o::expr::{interpret, AggFunc, CmpOp};
use h2o::prelude::*;
use h2o::storage::{f64_lane, GroupBuilder, LogicalType};
use h2o_exec::filter::{CompiledFilter, CompiledPred};
use h2o_exec::program::CompiledExpr;
use proptest::prelude::*;

/// A two-attribute (I64, F64) group with a small segment shift so even
/// tiny relations span several sealed segments (and their zone maps).
fn build_group(rows: usize, shift: u32, seed: u64) -> h2o::storage::ColumnGroup {
    let c0: Vec<Value> = (0..rows)
        .map(|i| ((i as u64).wrapping_mul(seed | 1).wrapping_add(seed) % 37) as Value - 11)
        .collect();
    // Non-dyadic doubles: /10 is inexact in binary, so sums depend on fold
    // order — exactly what the F64 contract must survive.
    let c1: Vec<Value> = (0..rows)
        .map(|i| {
            let k = ((i as u64).wrapping_mul(seed ^ 0x9e37).wrapping_add(1) % 41) as i64 - 17;
            f64_lane(k as f64 / 10.0)
        })
        .collect();
    GroupBuilder::from_columns_typed(
        vec![AttrId(0), AttrId(1)],
        vec![LogicalType::I64, LogicalType::F64],
        &[&c0, &c1],
        shift,
    )
    .unwrap()
}

fn pred(offset: u32, op: CmpOp, ty: LogicalType, lane: Value) -> CompiledPred {
    CompiledPred::from_lane(BoundAttr { slot: 0, offset }, op, ty, lane)
}

const OPS: [CmpOp; 6] = [
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Eq,
    CmpOp::Ne,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selection-vector and columnar filter builds agree with their scalar
    /// references over arbitrary sub-ranges — including ranges that start
    /// and end mid-chunk, mid-segment, and on empty slices.
    #[test]
    fn filter_builds_match_scalar(
        rows in 1usize..300,
        shift in 3u32..6,
        seed in 0u64..5000,
        op_i in 0usize..6,
        op_f in 0usize..6,
        c_i in -12i64..12,
        c_f in -180i64..180,
        lo_frac in 0.0f64..1.0,
        hi_frac in 0.0f64..1.0,
        two_preds in 0usize..2,
    ) {
        let g = build_group(rows, shift, seed);
        let views = GroupViews::from_groups(&[&g]);
        let mut preds = vec![pred(0, OPS[op_i], LogicalType::I64, c_i)];
        if two_preds == 1 {
            preds.push(pred(1, OPS[op_f], LogicalType::F64, f64_lane(c_f as f64 / 10.0)));
        }
        let filter = CompiledFilter::new(preds);
        let lo = (lo_frac * rows as f64) as usize;
        let hi = lo + (hi_frac * (rows - lo) as f64) as usize;
        for range in [0..rows, lo..hi.min(rows)] {
            prop_assert_eq!(
                selvector::build_selvec_range(&views, &filter, range.clone()),
                selvector::build_selvec_range_scalar(&views, &filter, range.clone()),
                "selvector over {:?}", range
            );
            prop_assert_eq!(
                colmajor::build_selvec_columnar_range(&views, &filter, range.clone()),
                colmajor::build_selvec_columnar_range_scalar(&views, &filter, range.clone()),
                "colmajor over {:?}", range
            );
        }
    }

    /// Fused specialized aggregation and the columnar streaming fold agree
    /// bit-for-bit with their scalar references for every aggregate
    /// function over both lane types.
    #[test]
    fn aggregate_folds_match_scalar(
        rows in 1usize..300,
        shift in 3u32..6,
        seed in 0u64..5000,
        op_i in 0usize..6,
        c_i in -12i64..12,
        func_i in 0usize..5,
    ) {
        let funcs = [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Count, AggFunc::Avg];
        let f = funcs[func_i];
        let g = build_group(rows, shift, seed);
        let views = GroupViews::from_groups(&[&g]);
        for filter in [
            CompiledFilter::always(),
            CompiledFilter::new(vec![pred(0, OPS[op_i], LogicalType::I64, c_i)]),
        ] {
            let aggs = vec![
                (AggOp::new(f, LogicalType::I64), CompiledExpr::Col(BoundAttr { slot: 0, offset: 0 })),
                (AggOp::new(f, LogicalType::F64), CompiledExpr::Col(BoundAttr { slot: 0, offset: 1 })),
            ];
            let vec_fin: Vec<Value> = fused::aggregate_range(&views, &filter, &aggs, 0..rows)
                .iter().map(|s| s.finish()).collect();
            let ref_fin: Vec<Value> = fused::aggregate_range_scalar(&views, &filter, &aggs, 0..rows)
                .iter().map(|s| s.finish()).collect();
            prop_assert_eq!(vec_fin, ref_fin, "fused {} filtered={}", f.name(), !filter.is_always_true());
        }
        // Streaming columnar fold (no filter): full AggState equality, not
        // just the finished lane.
        for (off, ty) in [(0u32, LogicalType::I64), (1u32, LogicalType::F64)] {
            let a = BoundAttr { slot: 0, offset: off };
            prop_assert_eq!(
                colmajor::agg_full_column_range(&views, a, AggOp::new(f, ty), 0..rows),
                colmajor::agg_full_column_range_scalar(&views, a, AggOp::new(f, ty), 0..rows),
                "colmajor stream {} {:?}", f.name(), ty
            );
        }
    }
}

/// Relation whose filter column is *sorted*, so sealed-segment zone maps
/// prune aggressively. `denom` scales the F64 column: a power of two keeps
/// every value (and every partial sum) on the dyadic grid where float
/// addition is exact in any order — required when asserting parallel
/// bit-identity, since morsel merges reassociate F64 sums. A non-dyadic
/// denominator (e.g. 10) makes sums fold-order-sensitive, which is exactly
/// what the serial-only bit-identity test wants to stress.
fn pruned_relation(rows: usize, denom: f64) -> Relation {
    let schema = Schema::typed([
        ("k", LogicalType::I64),
        ("x", LogicalType::F64),
        ("v", LogicalType::I64),
    ])
    .into_shared();
    let k: Vec<Value> = (0..rows as Value).collect();
    let x: Vec<Value> = (0..rows)
        .map(|i| f64_lane((i % 97) as f64 / denom))
        .collect();
    let v: Vec<Value> = (0..rows).map(|i| ((i * 31) % 101) as Value - 50).collect();
    Relation::partitioned_with_shift(
        schema,
        vec![k, x, v],
        vec![vec![AttrId(0), AttrId(1), AttrId(2)]],
        7,
    )
    .unwrap()
}

fn queries(rows: usize) -> Vec<Query> {
    let sel = |frac: f64| Conjunction::of([Predicate::lt(0u32, (rows as f64 * frac) as Value)]);
    vec![
        // Selective scans: most segments zone-pruned, chunk masks sparse.
        Query::aggregate([Aggregate::sum(Expr::col(2u32))], sel(0.01)).unwrap(),
        Query::aggregate(
            [
                Aggregate::sum(Expr::col(1u32)),
                Aggregate::min(Expr::col(1u32)),
                Aggregate::max(Expr::col(2u32)),
            ],
            sel(0.37),
        )
        .unwrap(),
        Query::project([Expr::col(2u32)], sel(0.11)).unwrap(),
        Query::grouped(
            [Expr::col(2u32).add(Expr::lit(1))],
            [Aggregate::sum(Expr::col(1u32))],
            sel(0.53),
        )
        .unwrap(),
        Query::aggregate([Aggregate::count()], Conjunction::always()).unwrap(),
    ]
}

/// All three strategies, serial and parallel, against the interpreter —
/// over a relation where zone maps prune most runs and the floats are
/// non-dyadic (so any fold-order deviation in an F64 sum shows up as a
/// fingerprint mismatch).
#[test]
fn strategies_agree_on_pruned_segmented_relation() {
    let rows = 4_000;
    let rel = pruned_relation(rows, 16.0);
    let layouts = rel.catalog().layout_ids();
    let policy = ExecPolicy {
        parallelism: Some(4),
        morsel_rows: 513,
        serial_threshold: 0,
    };
    for (qi, q) in queries(rows).iter().enumerate() {
        let want = interpret(rel.catalog(), q).unwrap();
        for strategy in Strategy::ALL {
            let plan = AccessPlan::new(layouts.clone(), strategy);
            let op = compile(rel.catalog(), &plan, q).unwrap();
            let serial = execute(rel.catalog(), &op).unwrap();
            assert_eq!(
                serial.fingerprint(),
                want.fingerprint(),
                "serial {} query {qi}",
                strategy.name()
            );
            let parallel = execute_with_policy(rel.catalog(), &op, &policy).unwrap();
            assert_eq!(parallel, serial, "parallel {} query {qi}", strategy.name());
        }
    }
}

/// A live (never-tripping) cancellation token caps segment runs at
/// `CANCEL_CHECK_ROWS` rows, exercising the vectorized loops over run
/// boundaries that don't align with segments or chunks. Results must stay
/// bit-identical to uncancelled execution. Uses a monolithic layout (one
/// huge segment) so the cap is what actually splits the scan.
#[test]
fn capped_runs_under_live_cancel_token_are_identical() {
    let rows = 100_000; // > CANCEL_CHECK_ROWS, not a multiple of it
    let schema = Schema::typed([("k", LogicalType::I64), ("x", LogicalType::F64)]).into_shared();
    let k: Vec<Value> = (0..rows).map(|i| ((i * 7) % 1000) as Value).collect();
    let x: Vec<Value> = (0..rows)
        .map(|i| f64_lane((i % 89) as f64 / 10.0))
        .collect();
    let rel =
        Relation::partitioned_with_shift(schema, vec![k, x], vec![vec![AttrId(0), AttrId(1)]], 30)
            .unwrap();
    let layouts = rel.catalog().layout_ids();
    let policy = ExecPolicy {
        parallelism: Some(1),
        morsel_rows: rows,
        serial_threshold: 0,
    };
    let q = Query::aggregate(
        [
            Aggregate::sum(Expr::col(1u32)),
            Aggregate::max(Expr::col(0u32)),
            Aggregate::count(),
        ],
        Conjunction::of([Predicate::lt(0u32, 100)]),
    )
    .unwrap();
    for strategy in Strategy::ALL {
        let plan = AccessPlan::new(layouts.clone(), strategy);
        let op = compile(rel.catalog(), &plan, &q).unwrap();
        let plain = execute(rel.catalog(), &op).unwrap();
        let live = CancelToken::new();
        let (capped, _) = execute_with_policy_cancel(rel.catalog(), &op, &policy, &live).unwrap();
        assert_eq!(capped, plain, "strategy {}", strategy.name());
    }
}

/// Serial F64 sums are bit-identical across all three strategies and the
/// interpreter even for non-dyadic inputs, where only exact row-order
/// folding can agree (the fold-order contract pins this).
#[test]
fn f64_sum_bit_identity_on_non_dyadic_values() {
    let rows = 3_001; // odd: chunk tails everywhere
    let rel = pruned_relation(rows, 10.0);
    let layouts = rel.catalog().layout_ids();
    let q = Query::aggregate(
        [
            Aggregate::sum(Expr::col(1u32)),
            Aggregate::avg(Expr::col(1u32)),
        ],
        Conjunction::of([Predicate::gt(2u32, 0)]),
    )
    .unwrap();
    let want = interpret(rel.catalog(), &q).unwrap();
    for strategy in Strategy::ALL {
        let plan = AccessPlan::new(layouts.clone(), strategy);
        let op = compile(rel.catalog(), &plan, &q).unwrap();
        let got = execute(rel.catalog(), &op).unwrap();
        assert_eq!(
            got.data(),
            want.data(),
            "bit-level f64 divergence in {}",
            strategy.name()
        );
    }
}
