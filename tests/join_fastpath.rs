//! Join fast-path differential suite: **bloom-filtered probes and
//! join-aggregate fusion never change an answer.**
//!
//! The fast paths are pure execution shortcuts — a blocked bloom filter
//! plus exact key range that skips hash lookups for provably-absent
//! keys, and a fused probe loop that folds matches straight into the
//! aggregate state when the build side contributes no payload. Both
//! must be bit-invisible: this suite sweeps fused join-aggregates
//! against the two-phase path and the nested-loop interpreter across
//! all three strategies × serial/parallel × both build sides, then
//! proptests bloom-on ≡ bloom-off bit-identity over random match
//! rates, key skew, and empty build sides.

use h2o::exec::{
    compile_join, execute_join_with_policy_opts, AccessPlan, ExecPolicy, JoinOptions, Strategy,
};
use h2o::expr::{check_join, interpret_join, JoinQuery};
use h2o::prelude::*;
use h2o::storage::LogicalType;
use h2o::workload::{gen_f64_column, gen_fk_column_in_domain, gen_sparse_key_column};
use proptest::prelude::*;
use std::sync::Arc;

fn dim_schema() -> Arc<Schema> {
    Schema::typed([
        ("key", LogicalType::I64),
        ("weight", LogicalType::F64),
        ("cls", LogicalType::I64),
    ])
    .into_shared()
}

fn fact_schema() -> Arc<Schema> {
    Schema::typed([
        ("fk", LogicalType::I64),
        ("val", LogicalType::F64),
        ("grp", LogicalType::I64),
    ])
    .into_shared()
}

/// Dimension/fact columns with *in-domain* misses: dim keys are sparse
/// (even), fact foreign keys that miss are odd values between real keys
/// — the `[min,max]` range check alone cannot reject them, so the bloom
/// bits carry the filtering. Payload `f64`s live on a dyadic grid, so
/// any fold order sums exactly.
fn dim_fact_columns(
    dim_rows: usize,
    fact_rows: usize,
    match_rate: f64,
    skew: f64,
    seed: u64,
) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let keys = gen_sparse_key_column(dim_rows, (dim_rows as u64).max(1) * 4, seed);
    let dim = vec![
        keys.clone(),
        gen_f64_column(dim_rows, 0.0, 50.0, seed ^ 1),
        (0..dim_rows).map(|i| ((i * 11) % 16) as Value).collect(),
    ];
    let parent: &[Value] = if keys.is_empty() { &[0] } else { &keys };
    let fact = vec![
        gen_fk_column_in_domain(fact_rows, parent, match_rate, skew, seed ^ 2),
        gen_f64_column(fact_rows, -4.0, 4.0, seed ^ 3),
        (0..fact_rows).map(|i| ((i * 7) % 6) as Value).collect(),
    ];
    (dim, fact)
}

/// Join-aggregate shapes whose selects read **only fact-side attributes**
/// — when the dimension side builds, its payload is empty and the probe
/// loop fuses (one multiplicity-weighted fold per probe row); when the
/// fact side builds, the same operator runs unfused. Both orders are
/// swept below.
fn fused_queries() -> Vec<(&'static str, JoinQuery)> {
    let b = || JoinQuery::builder(("dim", dim_schema()), ("fact", fact_schema()));
    let mut out = Vec::new();
    {
        let q = b();
        let val = q.col("val").unwrap();
        out.push((
            "scalar-rollup",
            q.on("key", "fk")
                .unwrap()
                .aggregate([
                    Aggregate::sum(val.clone()),
                    Aggregate::min(val),
                    Aggregate::count(),
                ])
                .unwrap(),
        ));
    }
    {
        let q = b();
        let grp = q.col("grp").unwrap();
        let val = q.col("val").unwrap();
        out.push((
            "grouped-rollup",
            q.on("key", "fk")
                .unwrap()
                .filter_right(Conjunction::of([Predicate::lt(2u32, 5)]))
                .grouped([grp], [Aggregate::sum(val), Aggregate::count()])
                .unwrap(),
        ));
    }
    {
        let q = b();
        let grp = q.col("grp").unwrap();
        let val = q.col("val").unwrap();
        out.push((
            "empty-build-rollup",
            q.on("key", "fk")
                .unwrap()
                // weight domain is [0, 50): nothing on the dim side
                // qualifies, so the build side is empty whenever dim
                // builds.
                .filter_left(Conjunction::of([Predicate::lt(1u32, -1.0)]))
                .grouped([grp], [Aggregate::sum(val), Aggregate::count()])
                .unwrap(),
        ));
    }
    out
}

fn opts(bloom: bool, fuse: bool) -> JoinOptions {
    JoinOptions { bloom, fuse }
}

/// Fused join-aggregates agree with the two-phase path and the
/// interpreter: 3 strategies × serial/parallel × both build sides, with
/// every fast-path toggle combination held to the both-off baseline.
#[test]
fn fused_aggregates_match_two_phase_and_interpreter() {
    let (dim_cols, fact_cols) = dim_fact_columns(600, 4_000, 0.35, 0.4, 23);
    let dim = Relation::columnar(dim_schema(), dim_cols).unwrap();
    let fact = Relation::columnar(fact_schema(), fact_cols).unwrap();
    let policies = [
        ("serial", ExecPolicy::serial()),
        (
            "parallel",
            ExecPolicy {
                parallelism: Some(4),
                morsel_rows: 128,
                serial_threshold: 0,
            },
        ),
    ];
    for (shape, q) in fused_queries() {
        let checked = check_join(&q).unwrap();
        let want = interpret_join(dim.catalog(), fact.catalog(), &q)
            .unwrap()
            .fingerprint();
        for strategy in Strategy::ALL {
            let lplan = AccessPlan::new(dim.catalog().layout_ids(), strategy);
            let rplan = AccessPlan::new(fact.catalog().layout_ids(), strategy);
            for build_is_left in [true, false] {
                let op = compile_join(
                    dim.catalog(),
                    fact.catalog(),
                    &lplan,
                    &rplan,
                    &q,
                    &checked,
                    build_is_left,
                )
                .unwrap();
                // The selects read only fact attributes, so the probe
                // loop fuses exactly when the dimension side builds.
                assert_eq!(
                    op.fused(),
                    build_is_left,
                    "{shape}: fusion requires an empty build payload"
                );
                for (pname, policy) in &policies {
                    let (slow, slow_stats) = execute_join_with_policy_opts(
                        dim.catalog(),
                        fact.catalog(),
                        &op,
                        policy,
                        opts(false, false),
                    )
                    .unwrap();
                    assert_eq!(
                        slow.fingerprint(),
                        want,
                        "{shape} {} {pname} build_is_left={build_is_left}: two-phase",
                        strategy.name()
                    );
                    assert_eq!(
                        slow_stats.probe_bloom_rejects, 0,
                        "bloom off rejects nothing"
                    );
                    for (bloom, fuse) in [(true, true), (true, false), (false, true)] {
                        let (fast, fast_stats) = execute_join_with_policy_opts(
                            dim.catalog(),
                            fact.catalog(),
                            &op,
                            policy,
                            opts(bloom, fuse),
                        )
                        .unwrap();
                        assert_eq!(
                            fast.data(),
                            slow.data(),
                            "{shape} {} {pname} build_is_left={build_is_left} \
                             bloom={bloom} fuse={fuse}",
                            strategy.name()
                        );
                        assert_eq!(fast_stats.output_pairs, slow_stats.output_pairs);
                        assert_eq!(fast_stats.probe_rows, slow_stats.probe_rows);
                    }
                }
            }
        }
    }
}

/// The 35%-match fixture actually exercises the filter: with the bloom
/// on, a majority of the qualifying probe rows skip their hash lookup
/// (misses are in-range, so the exact `[min,max]` check alone cannot
/// claim the credit).
#[test]
fn in_domain_misses_are_rejected_by_bloom_bits_not_the_range() {
    let (dim_cols, fact_cols) = dim_fact_columns(600, 4_000, 0.35, 0.4, 23);
    let dim = Relation::columnar(dim_schema(), dim_cols).unwrap();
    let fact = Relation::columnar(fact_schema(), fact_cols).unwrap();
    let (_, q) = fused_queries().remove(0);
    let checked = check_join(&q).unwrap();
    let lplan = AccessPlan::new(dim.catalog().layout_ids(), Strategy::SelVector);
    let rplan = AccessPlan::new(fact.catalog().layout_ids(), Strategy::SelVector);
    let op = compile_join(
        dim.catalog(),
        fact.catalog(),
        &lplan,
        &rplan,
        &q,
        &checked,
        true,
    )
    .unwrap();
    let (_, stats) = execute_join_with_policy_opts(
        dim.catalog(),
        fact.catalog(),
        &op,
        &ExecPolicy::serial(),
        opts(true, true),
    )
    .unwrap();
    let misses = stats.probe_rows - stats.output_pairs.min(stats.probe_rows);
    assert!(
        stats.probe_bloom_rejects as usize >= misses / 2,
        "bloom should reject most of the {misses} missing probes; \
         rejected {}",
        stats.probe_bloom_rejects
    );
}

/// One proptest case: every query shape × strategy × build side ×
/// serial/parallel, bloom-on against bloom-off, byte-identical.
fn bloom_invisible(dim_rows: usize, fact_rows: usize, match_rate: f64, skew: f64, seed: u64) {
    let (dim_cols, fact_cols) = dim_fact_columns(dim_rows, fact_rows, match_rate, skew, seed);
    let dim = Relation::columnar(dim_schema(), dim_cols).unwrap();
    let fact = Relation::columnar(fact_schema(), fact_cols).unwrap();
    let par = ExecPolicy {
        parallelism: Some(4),
        morsel_rows: 64,
        serial_threshold: 0,
    };
    for (shape, q) in fused_queries() {
        let checked = check_join(&q).unwrap();
        for strategy in Strategy::ALL {
            let lplan = AccessPlan::new(dim.catalog().layout_ids(), strategy);
            let rplan = AccessPlan::new(fact.catalog().layout_ids(), strategy);
            for build_is_left in [true, false] {
                let op = compile_join(
                    dim.catalog(),
                    fact.catalog(),
                    &lplan,
                    &rplan,
                    &q,
                    &checked,
                    build_is_left,
                )
                .unwrap();
                for policy in [&ExecPolicy::serial(), &par] {
                    let (off, _) = execute_join_with_policy_opts(
                        dim.catalog(),
                        fact.catalog(),
                        &op,
                        policy,
                        opts(false, true),
                    )
                    .unwrap();
                    let (on, _) = execute_join_with_policy_opts(
                        dim.catalog(),
                        fact.catalog(),
                        &op,
                        policy,
                        opts(true, true),
                    )
                    .unwrap();
                    prop_assert_eq!(
                        on.data(),
                        off.data(),
                        "{} {} build_is_left={} parallelism={:?}",
                        shape,
                        strategy.name(),
                        build_is_left,
                        policy.parallelism
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bloom filtering is bit-invisible for any match rate, key skew,
    /// and relation size — including empty build and probe sides.
    #[test]
    fn bloom_on_equals_bloom_off(
        seed in 0u64..1000,
        dim_rows in 0usize..250,
        fact_rows in 0usize..250,
        match_rate in 0.0f64..=1.0,
        skew in 0.0f64..=1.0,
    ) {
        bloom_invisible(dim_rows, fact_rows, match_rate, skew, seed);
    }
}
