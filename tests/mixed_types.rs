//! Typed-column differential suite: `i64` + `f64` + dictionary attributes
//! end-to-end on the fixed 64-bit lane.
//!
//! Every mixed-type query must return **bit-identical** results (`f64` bit
//! patterns included) across:
//!
//! * all three kernel strategies (fused / selvector / colmajor),
//! * serial vs morsel-parallel execution under any policy,
//! * segmented vs monolithic storage (zone-map pruning on vs off),
//! * the specialized kernels vs the reference interpreter,
//! * the adaptive engine through layout reorganization.
//!
//! Floats are drawn from the workload generators' dyadic grids, so sums
//! are exact and association-independent (the engine's float determinism
//! convention — see `h2o_expr::agg`); one pinned test injects NaNs and
//! signed zeros to fix the `total_cmp` ordering behavior. The randomized
//! half follows the workspace conventions: a `proptest!` block plus an
//! `H2O_STRESS_SEED`-seeded sweep that replays a CI run exactly.

use h2o::core::{EngineConfig, EngineError, H2oEngine};
use h2o::exec::{compile, execute, execute_with_policy, AccessPlan, ExecPolicy, Strategy};
use h2o::expr::{interpret, typecheck, Datum, QueryError};
use h2o::prelude::*;
use h2o::storage::{f64_lane, lane_f64, LogicalType, DEFAULT_SEG_SHIFT};
use h2o::workload::{gen_dict_column, gen_f64_column, gen_key_column, F64_GRID};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const ROWS: usize = 4_000;

/// Fixed default; `H2O_STRESS_SEED` overrides so CI failures replay.
fn stress_seed() -> u64 {
    std::env::var("H2O_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBEEF_CAFE)
}

/// The mixed-type test schema: a dictionary class column, integer flags,
/// and SkyServer-shaped `f64` domains.
fn mixed_schema() -> Arc<Schema> {
    Schema::typed([
        ("class", LogicalType::Dict),
        ("run", LogicalType::I64),
        ("ra", LogicalType::F64),
        ("dec", LogicalType::F64),
        ("flags", LogicalType::I64),
        ("mag", LogicalType::F64),
    ])
    .into_shared()
}

const CLASS_LABELS: [&str; 4] = ["STAR", "GALAXY", "QSO", "UNKNOWN"];

fn mixed_columns(schema: &Schema, rows: usize, seed: u64) -> Vec<Vec<Value>> {
    let dict = schema.dictionary(AttrId(0)).expect("class is dict");
    vec![
        gen_dict_column(rows, dict, &CLASS_LABELS, seed),
        gen_key_column(rows, 32, seed ^ 1),
        gen_f64_column(rows, 0.0, 360.0, seed ^ 2),
        gen_f64_column(rows, -90.0, 90.0, seed ^ 3),
        gen_key_column(rows, 4, seed ^ 4),
        gen_f64_column(rows, 10.0, 30.0, seed ^ 5),
    ]
}

/// Columnar / row-major / grouped layouts, segmented (shift 7 ⇒ 128-row
/// segments, dozens of zone maps) and monolithic (shift 30 ⇒ no sealed
/// segments, pruning structurally off).
fn relations(seed: u64) -> Vec<(&'static str, Relation)> {
    let schema = mixed_schema();
    let columns = mixed_columns(&schema, ROWS, seed);
    let columnar: Vec<Vec<AttrId>> = (0u32..6).map(|i| vec![AttrId(i)]).collect();
    let all: Vec<AttrId> = (0u32..6).map(AttrId::from).collect();
    let groups = vec![
        vec![AttrId(0), AttrId(2), AttrId(5)],
        vec![AttrId(1), AttrId(3)],
        vec![AttrId(4)],
    ];
    vec![
        (
            "columnar-seg",
            Relation::partitioned_with_shift(schema.clone(), columns.clone(), columnar, 7).unwrap(),
        ),
        (
            "row-major-mono",
            Relation::partitioned_with_shift(schema.clone(), columns.clone(), vec![all], 30)
                .unwrap(),
        ),
        (
            "grouped-seg",
            Relation::partitioned_with_shift(schema, columns, groups, 7).unwrap(),
        ),
    ]
}

/// Mixed-type query shapes: `f64` range filters, dictionary equality,
/// same-type arithmetic, typed aggregates, dict-keyed rollups, projections
/// mixing all three types.
fn mixed_queries() -> Vec<Query> {
    vec![
        // f64 range filter + f64 sum-of-columns expression (template iii).
        Query::project(
            [Expr::sum_of([AttrId(2), AttrId(3)])],
            Conjunction::of([Predicate::lt(2u32, 90.0), Predicate::gt(3u32, -45.0)]),
        )
        .unwrap(),
        // Dictionary equality + mixed projection (dict, i64, f64).
        Query::project(
            [Expr::col(0u32), Expr::col(1u32), Expr::col(5u32)],
            Conjunction::of([Predicate::eq(0u32, "GALAXY")]),
        )
        .unwrap(),
        // Dict inequality + f64 arithmetic with a typed literal.
        Query::project(
            [Expr::col(5u32).mul(Expr::lit(2.0)).sub(Expr::lit(0.5))],
            Conjunction::of([Predicate::new(0u32, h2o::expr::CmpOp::Ne, "STAR")]),
        )
        .unwrap(),
        // Typed scalar aggregates over both numeric lanes.
        Query::aggregate(
            [
                Aggregate::sum(Expr::col(2u32)),
                Aggregate::min(Expr::col(3u32)),
                Aggregate::max(Expr::col(5u32)),
                Aggregate::avg(Expr::col(2u32)),
                Aggregate::sum(Expr::col(1u32)),
                Aggregate::count(),
            ],
            Conjunction::of([Predicate::le(5u32, 20.0), Predicate::gt(1u32, 3)]),
        )
        .unwrap(),
        // Dense same-type aggregate run (hits the specialized kernels).
        Query::aggregate(
            [
                Aggregate::max(Expr::col(2u32)),
                Aggregate::max(Expr::col(3u32)),
            ],
            Conjunction::of([Predicate::lt(4u32, 2)]),
        )
        .unwrap(),
        // The canonical rollup: dict key, f64 + i64 measures.
        Query::grouped(
            [Expr::col(0u32)],
            [
                Aggregate::sum(Expr::col(5u32)),
                Aggregate::avg(Expr::col(2u32)),
                Aggregate::max(Expr::col(1u32)),
                Aggregate::count(),
            ],
            Conjunction::of([Predicate::lt(2u32, 180.0)]),
        )
        .unwrap(),
        // Two-column key mixing dict and i64; f64 expression measure.
        Query::grouped(
            [Expr::col(0u32), Expr::col(4u32)],
            [Aggregate::sum(Expr::col(2u32).add(Expr::col(3u32)))],
            Conjunction::always(),
        )
        .unwrap(),
        // f64 expression key (grid values ⇒ exact) with empty selection.
        Query::grouped(
            [Expr::col(5u32)],
            [Aggregate::count()],
            Conjunction::of([Predicate::gt(2u32, 400.0)]),
        )
        .unwrap(),
    ]
}

fn policies() -> Vec<ExecPolicy> {
    vec![
        ExecPolicy {
            parallelism: Some(4),
            morsel_rows: 128,
            serial_threshold: 0,
        },
        ExecPolicy {
            parallelism: Some(3),
            morsel_rows: 301, // deliberately unaligned to segments
            serial_threshold: 0,
        },
    ]
}

/// The acceptance-criterion matrix: strategies × serial/parallel ×
/// segmented/monolithic, all bit-identical to the interpreter.
#[test]
fn mixed_type_differential_all_strategies_layouts_policies() {
    for (layout, rel) in relations(7) {
        for q in mixed_queries() {
            let want = interpret(rel.catalog(), &q).unwrap();
            for strategy in Strategy::ALL {
                let plan = AccessPlan::new(rel.catalog().layout_ids(), strategy);
                let op = compile(rel.catalog(), &plan, &q).unwrap();
                let serial = execute(rel.catalog(), &op).unwrap();
                assert_eq!(
                    serial,
                    want,
                    "layout {layout} strategy {} query {q}",
                    strategy.name()
                );
                for policy in policies() {
                    let par = execute_with_policy(rel.catalog(), &op, &policy).unwrap();
                    assert_eq!(
                        par,
                        want,
                        "parallel {layout} strategy {} query {q}",
                        strategy.name()
                    );
                }
            }
        }
    }
}

/// NaN / signed-zero ordering is pinned to `total_cmp` on every path:
/// comparators, min/max aggregates, grouped-key sort.
#[test]
fn nan_ordering_pinned_to_total_cmp() {
    let schema = Schema::typed([("x", LogicalType::F64), ("k", LogicalType::I64)]).into_shared();
    let x = vec![
        f64_lane(1.5),
        f64_lane(f64::NAN),
        f64_lane(-0.0),
        f64_lane(0.0),
        f64_lane(f64::NEG_INFINITY),
        f64_lane(-f64::NAN),
        f64_lane(f64::INFINITY),
    ];
    let k = vec![0, 0, 0, 0, 0, 0, 0];
    let rel = Relation::partitioned_with_shift(
        schema,
        vec![x, k],
        vec![vec![AttrId(0)], vec![AttrId(1)]],
        1,
    )
    .unwrap();

    // total_cmp: -NaN < -inf < -0.0 < +0.0 < 1.5 < +inf < +NaN.
    // `x > 0.0` therefore selects {1.5, +inf, +NaN} — NaN included, unlike
    // IEEE `>`: the engine's comparisons are total-order by design.
    let gt_zero = Query::aggregate(
        [Aggregate::count()],
        Conjunction::of([Predicate::gt(0u32, 0.0)]),
    )
    .unwrap();
    let want = interpret(rel.catalog(), &gt_zero).unwrap();
    assert_eq!(want.row(0), &[3], "total_cmp admits +NaN above zero");
    // min/max over everything: -NaN is the minimum, +NaN the maximum.
    let extrema = Query::aggregate(
        [
            Aggregate::min(Expr::col(0u32)),
            Aggregate::max(Expr::col(0u32)),
        ],
        Conjunction::always(),
    )
    .unwrap();
    let ext = interpret(rel.catalog(), &extrema).unwrap();
    assert_eq!(ext.row(0)[0], f64_lane(-f64::NAN), "min is -NaN (bits)");
    assert_eq!(ext.row(0)[1], f64_lane(f64::NAN), "max is +NaN (bits)");
    // Grouped by x: one group per bit pattern, rows sorted in total_cmp
    // order.
    let grouped = Query::grouped(
        [Expr::col(0u32)],
        [Aggregate::count()],
        Conjunction::always(),
    )
    .unwrap();
    let g = interpret(rel.catalog(), &grouped).unwrap();
    assert_eq!(g.rows(), 7, "every bit pattern its own group");
    let keys: Vec<Value> = (0..7).map(|i| g.row(i)[0]).collect();
    assert_eq!(keys[0], f64_lane(-f64::NAN));
    assert_eq!(keys[1], f64_lane(f64::NEG_INFINITY));
    assert_eq!(keys[2], f64_lane(-0.0));
    assert_eq!(keys[3], f64_lane(0.0));
    assert_eq!(keys[4], f64_lane(1.5));
    assert_eq!(keys[5], f64_lane(f64::INFINITY));
    assert_eq!(keys[6], f64_lane(f64::NAN));
    // And every strategy, serial and parallel, reproduces all of it.
    for q in [gt_zero, extrema, grouped] {
        let want = interpret(rel.catalog(), &q).unwrap();
        for strategy in Strategy::ALL {
            let plan = AccessPlan::new(rel.catalog().layout_ids(), strategy);
            let op = compile(rel.catalog(), &plan, &q).unwrap();
            assert_eq!(execute(rel.catalog(), &op).unwrap(), want);
            for policy in policies() {
                assert_eq!(
                    execute_with_policy(rel.catalog(), &op, &policy).unwrap(),
                    want
                );
            }
        }
    }
}

/// Zone maps: a range filter over a segment-clustered attribute skips
/// sealed segments, is counted in `EngineStats`, and never changes results.
#[test]
fn zone_maps_skip_sealed_segments_and_preserve_results() {
    let schema = Schema::typed([("t", LogicalType::F64), ("v", LogicalType::I64)]).into_shared();
    let rows = 1usize << (DEFAULT_SEG_SHIFT + 2); // 4 sealed segments
                                                  // `t` is monotone (a timestamp-like clustered attribute): each sealed
                                                  // segment covers a narrow disjoint range, the zone maps' best case.
    let t: Vec<Value> = (0..rows).map(|r| f64_lane(r as f64 * F64_GRID)).collect();
    let v: Vec<Value> = (0..rows).map(|r| (r % 1000) as Value).collect();
    let rel =
        Relation::partitioned(schema, vec![t, v], vec![vec![AttrId(0)], vec![AttrId(1)]]).unwrap();
    let engine = H2oEngine::new(rel.clone(), EngineConfig::no_compile_latency());
    // A range predicate covering only the first segment's values.
    let cutoff = (1usize << DEFAULT_SEG_SHIFT) as f64 * F64_GRID / 2.0;
    let q = Query::aggregate(
        [Aggregate::count(), Aggregate::sum(Expr::col(1u32))],
        Conjunction::of([Predicate::lt(0u32, cutoff)]),
    )
    .unwrap();
    let want = interpret(rel.catalog(), &q).unwrap();
    let got = engine.run(Request::query(&q)).unwrap().result;
    assert_eq!(got, want, "pruned scan is bit-identical");
    assert_eq!(got.row(0)[0], (1 << DEFAULT_SEG_SHIFT) / 2);
    let skipped = engine.stats().segments_skipped;
    assert!(
        skipped >= 3,
        "at least the three later sealed segments skip, got {skipped}"
    );
}

/// Rendered-message regression tests for `QueryError::TypeMismatch` at the
/// engine boundary (mirroring the `RowCountMismatch`/`WidthMismatch`
/// precedent): cross-type predicate, cross-type arithmetic, grouped
/// key/measure mismatch.
#[test]
fn type_mismatch_rendered_messages_at_the_engine() {
    let schema = mixed_schema();
    let columns = mixed_columns(&schema, 64, 3);
    let engine = H2oEngine::new(
        Relation::columnar(schema, columns).unwrap(),
        EngineConfig::no_compile_latency(),
    );
    let expect_msg = |q: &Query, needle: &str, full: &str| {
        let err = engine.run(Request::query(q)).unwrap_err();
        let EngineError::Query(QueryError::TypeMismatch(_)) = &err else {
            panic!("expected TypeMismatch for {q}, got {err:?}");
        };
        let msg = err.to_string();
        assert!(msg.contains(needle), "missing {needle:?} in {msg:?}");
        assert_eq!(msg, full);
    };
    // Cross-type predicate: i64 constant against the f64 `ra` column.
    let q = Query::project(
        [Expr::col(2u32)],
        Conjunction::of([Predicate::lt(2u32, 180)]),
    )
    .unwrap();
    expect_msg(
        &q,
        "no implicit casts",
        "invalid query: type mismatch: predicate a2 < 180 compares f64 \
         attribute a2 with i64 constant (the engine has no implicit casts)",
    );
    // Cross-type arithmetic: i64 `run` + f64 `ra`.
    let q = Query::project(
        [Expr::col(1u32).add(Expr::col(2u32))],
        Conjunction::always(),
    )
    .unwrap();
    expect_msg(
        &q,
        "mixes i64 and f64",
        "invalid query: type mismatch: arithmetic (a1 + a2) mixes i64 and \
         f64 operands (the engine has no implicit casts)",
    );
    // Grouped key/measure mismatch: summing the dictionary key column.
    let q = Query::grouped(
        [Expr::col(4u32)],
        [Aggregate::sum(Expr::col(0u32))],
        Conjunction::always(),
    )
    .unwrap();
    expect_msg(
        &q,
        "requires a numeric input",
        "invalid query: type mismatch: aggregate sum(a0) requires a numeric \
         input; a0 is dictionary-encoded (only count(..) admits dict inputs)",
    );
    // Ordered comparison on a dictionary attribute.
    let q = Query::project(
        [Expr::col(0u32)],
        Conjunction::of([Predicate::lt(0u32, "STAR")]),
    )
    .unwrap();
    let msg = engine.run(Request::query(&q)).unwrap_err().to_string();
    assert!(msg.contains("admit only = and <>"), "{msg}");
    // Nothing was executed or recorded for any rejected query.
    assert_eq!(engine.stats().queries, 0);
}

/// The adaptive engine executes a mixed-type SkyServer-shaped workload
/// (f64 filters + dict-keyed rollups) bit-identically to the interpreter
/// on the same snapshot, while adaptation reorganizes typed layouts.
#[test]
fn adaptive_engine_matches_interpreter_on_mixed_skyserver_workload() {
    let (spec, columns, queries) = h2o::workload::skyserver_grouped_workload(2_000, 60, 21);
    let rel = Relation::columnar(spec.schema.clone(), columns).unwrap();
    let mut cfg = EngineConfig::no_compile_latency();
    cfg.window.initial = 8;
    cfg.window.min = 4;
    let engine = H2oEngine::new(rel, cfg);
    for (i, tq) in queries.iter().enumerate() {
        let out = engine
            .run(Request::query(&tq.query).hint(tq.selectivity))
            .unwrap();
        let (snap, got) = (out.snapshot.primary(), out.result);
        let want = interpret(snap, &tq.query).unwrap();
        assert_eq!(got, want, "query {i}: {}", tq.query);
    }
    let stats = engine.stats();
    assert!(stats.adaptations >= 1, "mixed workload drives adaptation");
    assert!(
        stats.layouts_created >= 1,
        "typed layouts materialize: {stats:?}"
    );
    // Typed rendering round-trips through the schema dictionaries.
    let q = Query::grouped(
        [Expr::Col(spec.schema.attr_by_name("type").unwrap())],
        [Aggregate::count()],
        Conjunction::always(),
    )
    .unwrap();
    let types = typecheck::check(&q, &spec.schema).unwrap().output_types();
    let out = engine.run(Request::query(&q)).unwrap().result;
    let dicts = vec![
        spec.schema
            .dictionary(spec.schema.attr_by_name("type").unwrap())
            .cloned(),
        None,
    ];
    let rendered = out.render(&types, &dicts);
    assert!(
        rendered.contains("\"GALAXY\""),
        "labels decode in rendered results: {rendered}"
    );
}

/// An f64 lane strategy for proptest: dyadic-grid values (exact sums) in a
/// modest range, NaN-free (NaN behavior is pinned separately above).
fn f64_grid_lane() -> impl PropStrategy<Value = i64> {
    (-200_000i64..200_000).prop_map(|k| f64_lane(k as f64 * F64_GRID))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed-type relations: every strategy × serial/parallel ×
    /// segmented/monolithic agrees bit-for-bit with the interpreter.
    #[test]
    fn mixed_relations_differential(
        rows in 1usize..260,
        shift in 3u32..6,
        f64_filter in f64_grid_lane(),
        i64_filter in -16i64..16,
        label in 0usize..CLASS_LABELS.len(),
        seed in 0u64..u64::MAX,
    ) {
        let schema = Schema::typed([
            ("c", LogicalType::Dict),
            ("i", LogicalType::I64),
            ("x", LogicalType::F64),
            ("y", LogicalType::F64),
        ]).into_shared();
        let dict = schema.dictionary(AttrId(0)).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let c: Vec<Value> = gen_dict_column(rows, dict, &CLASS_LABELS, seed);
        let i: Vec<Value> = (0..rows).map(|_| rng.gen_range(-16i64..16)).collect();
        let x: Vec<Value> = (0..rows)
            .map(|_| f64_lane(rng.gen_range(-200_000i64..200_000) as f64 * F64_GRID))
            .collect();
        let y: Vec<Value> = (0..rows)
            .map(|_| f64_lane(rng.gen_range(0i64..4096) as f64 * F64_GRID))
            .collect();
        let partitions = vec![
            vec![vec![AttrId(0)], vec![AttrId(1)], vec![AttrId(2)], vec![AttrId(3)]],
            vec![vec![AttrId(0), AttrId(1), AttrId(2), AttrId(3)]],
            vec![vec![AttrId(0), AttrId(2)], vec![AttrId(1), AttrId(3)]],
        ];
        let queries = vec![
            Query::project(
                [Expr::sum_of([AttrId(2), AttrId(3)])],
                Conjunction::of([Predicate::lt(2u32, lane_f64(f64_filter))]),
            ).unwrap(),
            Query::aggregate(
                [
                    Aggregate::sum(Expr::col(2u32)),
                    Aggregate::min(Expr::col(3u32)),
                    Aggregate::max(Expr::col(2u32)),
                    Aggregate::avg(Expr::col(3u32)),
                    Aggregate::count(),
                ],
                Conjunction::of([
                    Predicate::eq(0u32, CLASS_LABELS[label]),
                    Predicate::gt(1u32, i64_filter),
                ]),
            ).unwrap(),
            Query::grouped(
                [Expr::col(0u32)],
                [Aggregate::sum(Expr::col(2u32)), Aggregate::count()],
                Conjunction::of([Predicate::new(
                    3u32,
                    h2o::expr::CmpOp::Ge,
                    lane_f64(f64_filter).abs().min(4.0),
                )]),
            ).unwrap(),
        ];
        // Segmented and monolithic storage of the same logical data.
        for part in &partitions {
            for sh in [shift, 30] {
                let rel = Relation::partitioned_with_shift(
                    schema.clone(),
                    vec![c.clone(), i.clone(), x.clone(), y.clone()],
                    part.clone(),
                    sh,
                ).unwrap();
                for q in &queries {
                    let want = interpret(rel.catalog(), q).unwrap();
                    for strategy in Strategy::ALL {
                        let plan = AccessPlan::new(rel.catalog().layout_ids(), strategy);
                        let op = compile(rel.catalog(), &plan, q).unwrap();
                        prop_assert_eq!(&execute(rel.catalog(), &op).unwrap(), &want);
                        let policy = ExecPolicy {
                            parallelism: Some(4),
                            morsel_rows: 64,
                            serial_threshold: 0,
                        };
                        prop_assert_eq!(
                            &execute_with_policy(rel.catalog(), &op, &policy).unwrap(),
                            &want
                        );
                    }
                }
            }
        }
    }
}

/// The `H2O_STRESS_SEED`-seeded replay sweep (CI runs it in release with a
/// fixed seed; failures replay locally with the same value).
#[test]
fn stress_seed_replay_sweep() {
    let seed = stress_seed();
    let mut rng = SmallRng::seed_from_u64(seed);
    for round in 0..6 {
        let rel_seed = rng.gen_range(0..u64::MAX);
        for (layout, rel) in relations(rel_seed) {
            // Random typed filter constants per round.
            let ra = (rng.gen_range(0..360 * 1024) as f64) / 1024.0;
            let mag = 10.0 + (rng.gen_range(0..20 * 1024) as f64) / 1024.0;
            let label = CLASS_LABELS[rng.gen_range(0..CLASS_LABELS.len())];
            let queries = [
                Query::aggregate(
                    [
                        Aggregate::sum(Expr::col(2u32)),
                        Aggregate::max(Expr::col(5u32)),
                        Aggregate::count(),
                    ],
                    Conjunction::of([Predicate::lt(2u32, ra), Predicate::eq(0u32, label)]),
                )
                .unwrap(),
                Query::grouped(
                    [Expr::col(0u32), Expr::col(4u32)],
                    [Aggregate::sum(Expr::col(5u32)), Aggregate::count()],
                    Conjunction::of([Predicate::gt(5u32, mag)]),
                )
                .unwrap(),
            ];
            for q in queries {
                let want = interpret(rel.catalog(), &q).unwrap();
                for strategy in Strategy::ALL {
                    let plan = AccessPlan::new(rel.catalog().layout_ids(), strategy);
                    let op = compile(rel.catalog(), &plan, &q).unwrap();
                    assert_eq!(
                        execute(rel.catalog(), &op).unwrap(),
                        want,
                        "round {round} layout {layout} strategy {} \
                         (H2O_STRESS_SEED={seed})",
                        strategy.name()
                    );
                    for policy in policies() {
                        assert_eq!(
                            execute_with_policy(rel.catalog(), &op, &policy).unwrap(),
                            want,
                            "round {round} layout {layout} parallel {} \
                             (H2O_STRESS_SEED={seed})",
                            strategy.name()
                        );
                    }
                }
            }
        }
    }
}

/// Dictionary predicates resolve through the shared per-attribute
/// dictionary: unknown labels select nothing (`=`) / everything (`<>`),
/// and `Datum` round-trips lanes faithfully.
#[test]
fn dictionary_predicates_and_rendering() {
    let schema = mixed_schema();
    let columns = mixed_columns(&schema, 256, 11);
    let rel = Relation::columnar(schema.clone(), columns).unwrap();
    let count_where = |p: Predicate| {
        interpret(
            rel.catalog(),
            &Query::aggregate([Aggregate::count()], Conjunction::of([p])).unwrap(),
        )
        .unwrap()
        .row(0)[0]
    };
    let total = count_where(Predicate::new(1u32, h2o::expr::CmpOp::Ne, i64::MIN));
    assert_eq!(total, 256);
    let per_label: Value = CLASS_LABELS
        .iter()
        .map(|l| count_where(Predicate::eq(0u32, *l)))
        .sum();
    assert_eq!(per_label, total, "labels partition the relation");
    assert_eq!(count_where(Predicate::eq(0u32, "NOT_A_LABEL")), 0);
    assert_eq!(
        count_where(Predicate::new(0u32, h2o::expr::CmpOp::Ne, "NOT_A_LABEL")),
        total
    );
    // Datum round-trip through a rendered projection row.
    let q = Query::project([Expr::col(0u32), Expr::col(2u32)], Conjunction::always()).unwrap();
    let types = typecheck::check(&q, &schema).unwrap().output_types();
    assert_eq!(types, vec![LogicalType::Dict, LogicalType::F64]);
    let out = interpret(rel.catalog(), &q).unwrap();
    let dicts = vec![schema.dictionary(AttrId(0)).cloned(), None];
    let row = out.row_datums(0, &types, &dicts);
    assert!(matches!(&row[0], Datum::Str(_)));
    assert!(matches!(&row[1], Datum::F64(_)));
}
