//! Grouped-aggregation differential suite.
//!
//! Every grouped query must return **bit-identical** results (same rows,
//! same ascending-by-key order, same values) across:
//!
//! * all three kernel strategies (fused / selvector / colmajor),
//! * serial vs morsel-parallel execution under any policy,
//! * the specialized kernels vs the reference interpreter,
//! * the adaptive engine through layout reorganization.
//!
//! The randomized half follows the workspace's two conventions: a
//! `proptest!` block (deterministic per-test sampling, failing inputs
//! printed) and an `H2O_STRESS_SEED`-seeded sweep that replays a CI run
//! exactly (same seed ⇒ same relations, keys, cardinalities and filters).

use h2o::core::{EngineConfig, H2oEngine};
use h2o::exec::{compile, execute, execute_with_policy, AccessPlan, ExecPolicy, Strategy};
use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::workload::synth::{gen_columns_with_keys, threshold_for_selectivity};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 4_000;
const ATTRS: usize = 8;

/// Fixed default; `H2O_STRESS_SEED` overrides so CI failures replay.
fn stress_seed() -> u64 {
    std::env::var("H2O_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBEEF_CAFE)
}

/// Columnar / row-major / grouped layouts over the same logical data with
/// two low-cardinality key columns (a0: 8 buckets, a1: 8 buckets).
fn relations(seed: u64) -> Vec<(&'static str, Relation)> {
    let schema = Schema::with_width(ATTRS).into_shared();
    let columns = gen_columns_with_keys(ATTRS, ROWS, seed, 2, 8);
    vec![
        (
            "columnar",
            Relation::columnar(schema.clone(), columns.clone()).unwrap(),
        ),
        (
            "row-major",
            Relation::row_major(schema.clone(), columns.clone()).unwrap(),
        ),
        (
            "grouped-layout",
            Relation::partitioned(
                schema,
                columns,
                vec![
                    vec![AttrId(0), AttrId(2), AttrId(3)],
                    vec![AttrId(1), AttrId(4)],
                    vec![AttrId(5)],
                    vec![AttrId(6), AttrId(7)],
                ],
            )
            .unwrap(),
        ),
    ]
}

/// Grouped query shapes: single/multi keys, expression keys, every
/// aggregate function, expression aggregate inputs, the distinct-keys
/// degenerate, and empty/sparse/full selections.
fn grouped_queries() -> Vec<Query> {
    let filt = |s: f64| Conjunction::of([Predicate::lt(2u32, threshold_for_selectivity(s))]);
    vec![
        Query::grouped(
            [Expr::col(0u32)],
            [
                Aggregate::sum(Expr::col(2u32)),
                Aggregate::min(Expr::col(3u32)),
                Aggregate::max(Expr::col(4u32)),
                Aggregate::count(),
                Aggregate::avg(Expr::col(5u32)),
            ],
            filt(0.5),
        )
        .unwrap(),
        // Two-column key.
        Query::grouped(
            [Expr::col(0u32), Expr::col(1u32)],
            [Aggregate::sum(Expr::col(6u32)), Aggregate::count()],
            filt(0.8),
        )
        .unwrap(),
        // Expression key and expression aggregate input.
        Query::grouped(
            [Expr::col(0u32).add(Expr::col(1u32))],
            [Aggregate::sum(Expr::col(2u32).mul(Expr::col(3u32)))],
            Conjunction::of([
                Predicate::lt(2u32, threshold_for_selectivity(0.9)),
                Predicate::gt(3u32, threshold_for_selectivity(0.1)),
            ]),
        )
        .unwrap(),
        // Distinct-keys degenerate (no aggregates).
        Query::grouped([Expr::col(1u32)], [], Conjunction::always()).unwrap(),
        // Empty selection: zero output rows everywhere.
        Query::grouped([Expr::col(0u32)], [Aggregate::count()], filt(0.0)).unwrap(),
        // Very sparse and unfiltered.
        Query::grouped(
            [Expr::col(0u32)],
            [Aggregate::max(Expr::col(7u32))],
            filt(0.01),
        )
        .unwrap(),
        Query::grouped(
            [Expr::col(1u32)],
            [Aggregate::sum(Expr::col(4u32))],
            Conjunction::always(),
        )
        .unwrap(),
        // High-cardinality key: a raw uniform column (worst case — nearly
        // every row its own group).
        Query::grouped([Expr::col(6u32)], [Aggregate::count()], filt(0.3)).unwrap(),
    ]
}

fn policies() -> Vec<(&'static str, ExecPolicy)> {
    let p = |threads: usize, morsel: usize| ExecPolicy {
        parallelism: Some(threads),
        morsel_rows: morsel,
        serial_threshold: 0,
    };
    vec![
        ("serial-explicit", p(1, 1_000)),
        ("two-workers", p(2, 577)),
        ("four-workers", p(4, 1_024)),
        ("many-tiny-morsels", p(4, 64)),
        ("eight-workers-odd-morsel", p(8, 999)),
    ]
}

#[test]
fn grouped_matches_interpreter_for_every_strategy_layout_and_policy() {
    for (layout, rel) in relations(77) {
        let layouts = rel.catalog().layout_ids();
        for (qi, q) in grouped_queries().iter().enumerate() {
            let want = interpret(rel.catalog(), q).unwrap();
            for strategy in Strategy::ALL {
                let plan = AccessPlan::new(layouts.clone(), strategy);
                let op = compile(rel.catalog(), &plan, q).unwrap();
                let serial = execute(rel.catalog(), &op).unwrap();
                // Bit-identical (not just fingerprint): grouped output is
                // canonically sorted by key vector in every strategy.
                assert_eq!(
                    serial,
                    want,
                    "layout {layout} strategy {} query {qi}",
                    strategy.name()
                );
                for (pname, policy) in policies() {
                    let parallel = execute_with_policy(rel.catalog(), &op, &policy).unwrap();
                    assert_eq!(
                        parallel,
                        serial,
                        "layout {layout} strategy {} query {qi} policy {pname}",
                        strategy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn grouped_engine_stays_correct_through_adaptation() {
    let mut cfg = EngineConfig::no_compile_latency();
    cfg.window.initial = 8;
    cfg.window.min = 4;
    cfg.parallelism = Some(4);
    cfg.morsel_rows = 256;
    cfg.parallel_row_threshold = 0;
    let schema = Schema::with_width(12).into_shared();
    let columns = gen_columns_with_keys(12, 3_000, 5, 1, 16);
    let engine = H2oEngine::new(Relation::columnar(schema, columns).unwrap(), cfg);
    for i in 0..40 {
        let q = Query::grouped(
            [Expr::col(0u32)],
            [
                Aggregate::sum(Expr::sum_of([AttrId(1), AttrId(2)])),
                Aggregate::count(),
            ],
            Conjunction::of([Predicate::lt(
                3u32,
                threshold_for_selectivity(0.1 * (i % 10) as f64 + 0.05),
            )]),
        )
        .unwrap();
        let want = interpret(&engine.catalog(), &q).unwrap();
        let got = engine.run(Request::query(&q)).unwrap().result;
        assert_eq!(got, want, "grouped query {i} through the adaptive engine");
    }
    assert!(
        engine.stats().layouts_created >= 1,
        "the grouped workload must exercise online reorganization; stats: {:?}",
        engine.stats()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random group keys, cardinalities and filters: all three strategies
    /// and a parallel policy agree bit-for-bit with the interpreter.
    #[test]
    fn random_grouped_queries_agree_everywhere(
        rows in 0usize..400,
        cardinality in 1u64..40,
        key_attr in 0usize..3,
        filter_attr in 0usize..4,
        threshold in -1000i64..1000,
        agg_pick in 0usize..5,
    ) {
        let n_attrs = 4usize;
        let schema = Schema::with_width(n_attrs).into_shared();
        // Small value domain so keys and filters both bite.
        let mut rng = SmallRng::seed_from_u64(rows as u64 ^ (cardinality << 16));
        let columns: Vec<Vec<Value>> = (0..n_attrs)
            .map(|k| {
                (0..rows)
                    .map(|_| {
                        if k == key_attr {
                            rng.gen_range(0..cardinality as Value)
                        } else {
                            rng.gen_range(-1000..1000)
                        }
                    })
                    .collect()
            })
            .collect();
        let rel = Relation::columnar(schema, columns).unwrap();
        let agg = match agg_pick {
            0 => Aggregate::sum(Expr::col(((key_attr + 1) % n_attrs) as u32)),
            1 => Aggregate::min(Expr::col(((key_attr + 2) % n_attrs) as u32)),
            2 => Aggregate::max(Expr::col(((key_attr + 1) % n_attrs) as u32)),
            3 => Aggregate::avg(Expr::col(((key_attr + 3) % n_attrs) as u32)),
            _ => Aggregate::count(),
        };
        let q = Query::grouped(
            [Expr::col(key_attr as u32)],
            [agg, Aggregate::count()],
            Conjunction::of([Predicate::lt(filter_attr as u32, threshold)]),
        )
        .unwrap();
        let want = interpret(rel.catalog(), &q).unwrap();
        prop_assert!(want.rows() <= cardinality as usize);
        let policy = ExecPolicy {
            parallelism: Some(4),
            morsel_rows: 37,
            serial_threshold: 0,
        };
        for strategy in Strategy::ALL {
            let plan = AccessPlan::new(rel.catalog().layout_ids(), strategy);
            let op = compile(rel.catalog(), &plan, &q).unwrap();
            let serial = execute(rel.catalog(), &op).unwrap();
            prop_assert_eq!(&serial, &want, "strategy {}", strategy.name());
            let parallel = execute_with_policy(rel.catalog(), &op, &policy).unwrap();
            prop_assert_eq!(&parallel, &want, "parallel {}", strategy.name());
        }
    }
}

/// Seeded randomized sweep on the stress-seed convention: the relation,
/// key cardinalities, query shapes and policies are all a pure function of
/// `H2O_STRESS_SEED`, so a CI failure replays locally with the same seed.
#[test]
fn stress_seeded_grouped_sweep() {
    let seed = stress_seed();
    let mut rng = SmallRng::seed_from_u64(seed);
    for round in 0..12 {
        let rows = rng.gen_range(1..2_000usize);
        let card = rng.gen_range(1..64u64);
        let schema = Schema::with_width(ATTRS).into_shared();
        let columns = gen_columns_with_keys(ATTRS, rows, seed ^ round, 2, card);
        let rel = Relation::columnar(schema, columns).unwrap();
        let keys: Vec<Expr> = if rng.gen_bool(0.5) {
            vec![Expr::col(0u32)]
        } else {
            vec![Expr::col(0u32), Expr::col(1u32)]
        };
        let q = Query::grouped(
            keys,
            [
                Aggregate::sum(Expr::col(rng.gen_range(2..ATTRS) as u32)),
                Aggregate::count(),
            ],
            Conjunction::of([Predicate::lt(
                rng.gen_range(2..ATTRS) as u32,
                threshold_for_selectivity(rng.gen_range(0.0..1.0)),
            )]),
        )
        .unwrap();
        let want = interpret(rel.catalog(), &q).unwrap();
        let policy = ExecPolicy {
            parallelism: Some(rng.gen_range(2..6)),
            morsel_rows: rng.gen_range(32..512),
            serial_threshold: 0,
        };
        for strategy in Strategy::ALL {
            let plan = AccessPlan::new(rel.catalog().layout_ids(), strategy);
            let op = compile(rel.catalog(), &plan, &q).unwrap();
            assert_eq!(
                execute(rel.catalog(), &op).unwrap(),
                want,
                "round {round} strategy {} (H2O_STRESS_SEED={seed})",
                strategy.name()
            );
            assert_eq!(
                execute_with_policy(rel.catalog(), &op, &policy).unwrap(),
                want,
                "round {round} parallel {} (H2O_STRESS_SEED={seed})",
                strategy.name()
            );
        }
    }
}
