//! Write-path integration: appends stay consistent across every layout and
//! across adaptation (the extension the paper leaves as future work).

use h2o::core::{EngineConfig, H2oEngine};
use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::workload::synth::gen_columns;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn engine(n_attrs: usize, rows: usize, seed: u64) -> H2oEngine {
    let schema = Schema::with_width(n_attrs).into_shared();
    let relation = Relation::columnar(schema, gen_columns(n_attrs, rows, seed)).unwrap();
    let mut cfg = EngineConfig::no_compile_latency();
    cfg.window.initial = 6;
    cfg.window.min = 4;
    H2oEngine::new(relation, cfg)
}

#[test]
fn interleaved_reads_writes_and_adaptation_stay_consistent() {
    let e = engine(16, 1000, 21);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let hot_query = |v: i64| {
        Query::aggregate(
            [
                Aggregate::sum(Expr::sum_of([AttrId(0), AttrId(1), AttrId(2)])),
                Aggregate::count(),
            ],
            Conjunction::of([Predicate::lt(3u32, v)]),
        )
        .unwrap()
    };
    let mut expected_rows = 1000usize;
    for i in 0..60 {
        // Write a small batch every few queries.
        if i % 4 == 0 {
            let batch: Vec<Vec<i64>> = (0..3)
                .map(|_| (0..16).map(|_| rng.gen_range(-1000..1000)).collect())
                .collect();
            e.insert(&batch).unwrap();
            expected_rows += 3;
        }
        let q = hot_query(rng.gen_range(-1_000_000_000..1_000_000_000));
        let want = interpret(&e.catalog(), &q).unwrap();
        let got = e.run(Request::query(&q)).unwrap().result;
        assert_eq!(got.fingerprint(), want.fingerprint(), "query {i}");
        assert_eq!(e.catalog().rows(), expected_rows);
        // Every layout must stay row-aligned, including adaptively created
        // ones.
        assert!(e.catalog().groups().all(|g| g.rows() == expected_rows));
    }
    assert!(e.stats().rows_appended > 0);
}

#[test]
fn count_reflects_appends_through_any_layout() {
    let e = engine(8, 100, 9);
    // Force a tailored layout, then append, then count through it.
    e.materialize_now(&[AttrId(0), AttrId(4)]).unwrap();
    let q = Query::aggregate([Aggregate::count()], Conjunction::always()).unwrap();
    assert_eq!(e.run(Request::query(&q)).unwrap().result.row(0)[0], 100);
    e.insert(&vec![vec![0; 8]; 7]).unwrap();
    assert_eq!(e.run(Request::query(&q)).unwrap().result.row(0)[0], 107);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Appended values are exactly retrievable regardless of which layouts
    /// exist.
    #[test]
    fn appended_tuples_roundtrip(
        tuples in proptest::collection::vec(
            proptest::collection::vec(-1_000i64..1_000, 5..=5), 1..10),
        materialize_extra in any::<bool>(),
    ) {
        let e = engine(5, 20, 3);
        if materialize_extra {
            e.materialize_now(&[AttrId(1), AttrId(3)]).unwrap();
        }
        e.insert(&tuples).unwrap();
        let base = 20;
        for (i, t) in tuples.iter().enumerate() {
            for (a, &v) in t.iter().enumerate() {
                prop_assert_eq!(
                    e.catalog().cell(base + i, AttrId::from(a)).unwrap(),
                    v
                );
            }
        }
    }
}
