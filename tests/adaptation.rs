//! End-to-end behavior of the adaptation mechanism: layouts emerge for hot
//! clusters, shifts re-trigger adaptation, oscillation does not thrash, and
//! adaptation can start from any initial layout.

use h2o::core::{EngineConfig, H2oEngine};
use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::workload::sequence::{oscillating_sequence, shifted_sequence};
use h2o::workload::synth::gen_columns;

fn engine_with(relation: Relation, window: usize) -> H2oEngine {
    let mut cfg = EngineConfig::no_compile_latency();
    cfg.window.initial = window;
    cfg.window.min = 4;
    H2oEngine::new(relation, cfg)
}

fn columnar(n_attrs: usize, rows: usize, seed: u64) -> Relation {
    let schema = Schema::with_width(n_attrs).into_shared();
    Relation::columnar(schema, gen_columns(n_attrs, rows, seed)).unwrap()
}

fn row_major(n_attrs: usize, rows: usize, seed: u64) -> Relation {
    let schema = Schema::with_width(n_attrs).into_shared();
    Relation::row_major(schema, gen_columns(n_attrs, rows, seed)).unwrap()
}

/// Drives a workload through the engine, checking every answer against the
/// interpreter, and returns the engine for inspection.
fn drive(engine: H2oEngine, workload: &[h2o::workload::TimedQuery]) -> H2oEngine {
    for (i, tq) in workload.iter().enumerate() {
        let want = interpret(&engine.catalog(), &tq.query).unwrap();
        let got = engine
            .run(Request::query(&tq.query).hint(tq.selectivity))
            .unwrap()
            .result;
        assert_eq!(got.fingerprint(), want.fingerprint(), "query {i} diverged");
    }
    engine
}

#[test]
fn hot_cluster_produces_layout_and_it_gets_used() {
    let engine = engine_with(columnar(40, 5_000, 1), 10);
    // 50 identical-class expression queries over attrs 0..8, filter on 9.
    let workload: Vec<h2o::workload::TimedQuery> = (0..50)
        .map(|i| {
            let q = Query::project(
                [Expr::sum_of((0u32..8).map(AttrId))],
                Conjunction::of([Predicate::lt(9u32, (i % 11) * 150_000_000 - 700_000_000)]),
            )
            .unwrap();
            h2o::workload::TimedQuery {
                query: q,
                selectivity: 0.5,
            }
        })
        .collect();
    let engine = drive(engine, &workload);
    assert!(engine.stats().layouts_created >= 1, "{:?}", engine.stats());
    // The last queries should execute on a multi-attribute group.
    let report = engine.last_report().unwrap();
    assert!(report
        .layouts
        .iter()
        .any(|&id| engine.catalog().group(id).unwrap().width() > 1));
}

#[test]
fn workload_shift_is_detected_and_followed() {
    let engine = engine_with(columnar(60, 5_000, 2), 12);
    let workload = shifted_sequence(60, 70, 25, 20, 7);
    let engine = drive(engine, &workload);
    let stats = engine.stats();
    assert!(stats.shifts_detected >= 1, "shift missed: {stats:?}");
    assert!(
        stats.layouts_created >= 1,
        "no layout for either phase: {stats:?}"
    );
}

#[test]
fn adaptation_works_from_row_major_start() {
    // "H2O can adapt regardless of the initial data layout."
    let engine = engine_with(row_major(30, 4_000, 3), 8);
    let workload: Vec<h2o::workload::TimedQuery> = (0..40)
        .map(|i| {
            let q = Query::aggregate(
                [
                    Aggregate::sum(Expr::col(1u32)),
                    Aggregate::max(Expr::col(2u32)),
                ],
                Conjunction::of([Predicate::gt(0u32, (i % 7) * 100_000_000)]),
            )
            .unwrap();
            h2o::workload::TimedQuery {
                query: q,
                selectivity: 0.4,
            }
        })
        .collect();
    let engine = drive(engine, &workload);
    // Starting from one wide group, the engine should have carved out a
    // narrow layout for the hot trio.
    assert!(
        engine.catalog().group_count() > 1,
        "no new layouts from a row-major start"
    );
}

#[test]
fn oscillating_workload_does_not_thrash() {
    let engine = engine_with(columnar(30, 3_000, 4), 8);
    let workload = oscillating_sequence(30, 80, 5, 9);
    let engine = drive(engine, &workload);
    let stats = engine.stats();
    // Layouts for (at most) the two classes — not one per oscillation.
    assert!(
        stats.layouts_created <= 6,
        "layout thrashing: {} creations",
        stats.layouts_created
    );
    // And the engine must never have dropped below the floor of groups: the
    // catalog only ever grows here (no destructive churn).
    assert!(engine.catalog().group_count() >= 30);
}

#[test]
fn non_adaptive_ablation_still_correct() {
    let mut cfg = EngineConfig::non_adaptive();
    cfg.compile_cost = h2o::exec::CompileCostModel::ZERO;
    let engine = H2oEngine::new(columnar(20, 2_000, 5), cfg);
    let workload = shifted_sequence(20, 30, 10, 8, 3);
    let engine = drive(engine, &workload);
    assert_eq!(engine.stats().layouts_created, 0);
    assert_eq!(engine.stats().adaptations, 0);
}

#[test]
fn pending_layouts_are_lazy() {
    // A recommendation must not materialize anything until a query
    // actually benefits: run a hot phase to build up pending layouts, then
    // observe that an unrelated query does not trigger creation.
    let engine = engine_with(columnar(40, 4_000, 6), 6);
    for i in 0..6 {
        let q = Query::project(
            [Expr::sum_of((0u32..10).map(AttrId))],
            Conjunction::of([Predicate::lt(10u32, i * 100_000_000)]),
        )
        .unwrap();
        engine.run(Request::query(&q).hint(0.5)).unwrap();
    }
    let pending_after_adapt = engine.pending().len();
    let created_before = engine.stats().layouts_created;
    // Unrelated query: touches attrs 30..32 only.
    let q = Query::project(
        [Expr::col(31u32)],
        Conjunction::of([Predicate::gt(30u32, 0)]),
    )
    .unwrap();
    engine.run(Request::query(&q)).unwrap();
    assert_eq!(
        engine.stats().layouts_created,
        created_before,
        "unrelated query must not trigger materialization"
    );
    let _ = pending_after_adapt;
}

#[test]
fn drop_and_rematerialize_race_with_pending_advice() {
    // materialize_now / drop_layout interleaved with the adviser's pending
    // proposals: administration must never panic, never tear the catalog,
    // and never leave pending() advertising a spec that already exists.
    let engine = engine_with(columnar(40, 3_000, 6), 6);
    // Hot phase builds up pending advice (same shape as
    // `pending_layouts_are_lazy`).
    for i in 0..6 {
        let q = Query::project(
            [Expr::sum_of((0u32..10).map(AttrId))],
            Conjunction::of([Predicate::lt(10u32, i * 100_000_000)]),
        )
        .unwrap();
        engine.run(Request::query(&q).hint(0.5)).unwrap();
    }
    let pending = engine.pending();
    assert!(
        !pending.is_empty(),
        "hot phase must leave advice pending for this scenario"
    );

    // Materialize the adviser's own proposal explicitly: it must leave the
    // pending queue (otherwise a lazy query would try to create it twice).
    let spec = pending[0].clone();
    let attrs: Vec<AttrId> = spec.attrs.to_vec();
    let id = engine.materialize_now(&attrs).unwrap();
    assert!(
        engine.pending().iter().all(|g| g.attrs != spec.attrs),
        "materialize_now must retire the matching pending spec"
    );

    // Drop the layout the adviser just proposed (and we just built): the
    // spec becomes materializable again and queries keep working.
    engine.drop_layout(id).unwrap();
    assert!(matches!(
        engine.drop_layout(id),
        Err(h2o::core::EngineError::Storage(_))
    ));
    for i in 0..12 {
        let q = Query::project(
            [Expr::sum_of((0u32..10).map(AttrId))],
            Conjunction::of([Predicate::lt(10u32, i * 50_000_000)]),
        )
        .unwrap();
        let want = interpret(&engine.catalog(), &q).unwrap();
        let got = engine.run(Request::query(&q).hint(0.5)).unwrap().result;
        assert_eq!(got.fingerprint(), want.fingerprint(), "post-drop query {i}");
    }
    // The catalog is whole: full coverage, all groups row-aligned.
    let snap = engine.catalog();
    assert!(snap.covers_schema());
    assert!(snap.groups().all(|g| g.rows() == snap.rows()));

    // A second materialize/drop cycle of the same spec works (ids are
    // never reused, pending stays consistent).
    let id2 = engine.materialize_now(&attrs).unwrap();
    assert_ne!(id, id2);
    engine.drop_layout(id2).unwrap();
}
