//! Multi-client differential stress suite.
//!
//! N reader threads run a mixed projection/aggregate workload against a
//! *shared* engine while one writer thread appends batched rows and
//! adaptive reorganization runs (lazily on the query path, or on a
//! background reorganizer thread). Every concurrent result is
//! fingerprint-checked against the serial `interpret` oracle **on the
//! snapshot it ran against**, and every observed snapshot is checked for
//! tearing (full schema coverage, all groups row-aligned).
//!
//! The workload is deterministic: set `H2O_STRESS_SEED` to reproduce a CI
//! run (thread interleavings vary, but every query/batch sequence and every
//! differential check is a pure function of the seed and the thread index).

use h2o::core::{EngineConfig, H2oEngine};
use h2o::exec::{compile, execute_with_policy, AccessPlan, ExecPolicy, Strategy};
use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::storage::LayoutCatalog;
use h2o::workload::synth::{gen_columns, threshold_for_selectivity, VALUE_MAX, VALUE_MIN};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const ATTRS: usize = 12;
const ROWS: usize = 3_000;
const READERS: usize = 4;
const QUERIES_PER_READER: usize = 40;
const WRITE_BATCHES: usize = 25;
const BATCH_ROWS: usize = 4;

/// Fixed default; `H2O_STRESS_SEED` overrides so CI failures replay.
fn stress_seed() -> u64 {
    std::env::var("H2O_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn shared_engine(cfg: EngineConfig) -> Arc<H2oEngine> {
    let schema = Schema::with_width(ATTRS).into_shared();
    let columns = gen_columns(ATTRS, ROWS, stress_seed());
    Arc::new(H2oEngine::new(
        Relation::columnar(schema, columns).unwrap(),
        cfg,
    ))
}

fn adaptive_config() -> EngineConfig {
    let mut cfg = EngineConfig::no_compile_latency();
    cfg.window.initial = 8;
    cfg.window.min = 4;
    cfg
}

/// A mixed workload query: half projections, half aggregates, over a small
/// set of hot attribute clusters so adaptation has something to chew on.
fn mixed_query(rng: &mut SmallRng) -> Query {
    let base = (rng.gen_range(0..3u32)) * 3;
    let width = rng.gen_range(1..=3u32);
    let select: Vec<AttrId> = (base..base + width).map(AttrId).collect();
    let where_attr = (base + width) % ATTRS as u32;
    let filter = if rng.gen_range(0..8u32) == 0 {
        Conjunction::always()
    } else {
        Conjunction::of([Predicate::lt(
            where_attr,
            threshold_for_selectivity(rng.gen_range(0.0..1.0)),
        )])
    };
    if rng.gen_range(0..2u32) == 0 {
        Query::project([Expr::sum_of(select)], filter).unwrap()
    } else {
        Query::aggregate(
            [
                Aggregate::sum(Expr::sum_of(select)),
                Aggregate::count(),
                Aggregate::max(Expr::col(where_attr)),
            ],
            filter,
        )
        .unwrap()
    }
}

/// No query may observe a torn catalog: every snapshot covers the schema
/// and every group in it holds exactly the snapshot's row count.
fn assert_untorn(snap: &LayoutCatalog, ctx: &str) {
    assert!(snap.covers_schema(), "{ctx}: snapshot lost coverage");
    let rows = snap.rows();
    for g in snap.groups() {
        assert_eq!(
            g.rows(),
            rows,
            "{ctx}: group {} is not row-aligned (snapshot has {rows} rows)",
            g.id()
        );
    }
}

/// One writer thread: appends deterministic batches (verified afterwards
/// through `stats().rows_appended` and the final snapshot's row count).
fn writer_loop(engine: &H2oEngine) {
    let mut rng = SmallRng::seed_from_u64(stress_seed() ^ 0xB11D_F00D);
    for _ in 0..WRITE_BATCHES {
        let batch: Vec<Vec<i64>> = (0..BATCH_ROWS)
            .map(|_| {
                (0..ATTRS)
                    .map(|_| rng.gen_range(VALUE_MIN..VALUE_MAX))
                    .collect()
            })
            .collect();
        engine.insert(&batch).unwrap();
        std::thread::yield_now();
    }
}

/// The headline test: 4 readers × mixed workload + 1 writer + adaptation
/// (lazy fused materialization on the query path), every result checked
/// bit-identically against the serial oracle on its own snapshot.
#[test]
fn readers_writer_and_lazy_adaptation_are_differentially_correct() {
    let engine = shared_engine(adaptive_config());
    std::thread::scope(|s| {
        let engine = &engine;
        s.spawn(move || writer_loop(engine));
        for t in 0..READERS {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(stress_seed() ^ (t as u64 + 1));
                for i in 0..QUERIES_PER_READER {
                    let q = mixed_query(&mut rng);
                    let out = engine.run(Request::query(&q)).unwrap();
                    let (snap, got) = (out.snapshot.primary().clone(), out.result);
                    assert_untorn(&snap, &format!("reader {t} query {i}"));
                    let want = interpret(&snap, &q).unwrap();
                    assert_eq!(
                        got.fingerprint(),
                        want.fingerprint(),
                        "reader {t} query {i} diverged from the oracle on its snapshot: {q}"
                    );
                }
            });
        }
    });
    let stats = engine.stats();
    assert_eq!(
        stats.rows_appended,
        (WRITE_BATCHES * BATCH_ROWS) as u64,
        "every batch must have landed"
    );
    assert_eq!(stats.queries, (READERS * QUERIES_PER_READER) as u64);
    assert!(
        stats.snapshots_published >= WRITE_BATCHES as u64,
        "each batch is one atomic publish at least; stats: {stats:?}"
    );
    // The final snapshot reflects all writes and stays untorn.
    let final_snap = engine.snapshot();
    assert_untorn(&final_snap, "final");
    assert_eq!(final_snap.rows(), ROWS + WRITE_BATCHES * BATCH_ROWS);
}

/// Same stress shape with the background reorganizer thread doing all
/// adaptation off the query path (`EngineConfig::background`).
#[test]
fn background_reorganizer_stress_is_differentially_correct() {
    let mut cfg = EngineConfig::background();
    cfg.window.initial = 8;
    cfg.window.min = 4;
    let engine = shared_engine(cfg);
    let mut reorganizer = engine
        .spawn_reorganizer(Duration::from_millis(1))
        .expect("spawn reorganizer");
    std::thread::scope(|s| {
        let engine = &engine;
        s.spawn(move || writer_loop(engine));
        for t in 0..READERS {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(stress_seed() ^ (0x8000 + t as u64));
                for i in 0..QUERIES_PER_READER {
                    let q = mixed_query(&mut rng);
                    let out = engine.run(Request::query(&q)).unwrap();
                    let (snap, got) = (out.snapshot.primary().clone(), out.result);
                    assert_untorn(&snap, &format!("bg reader {t} query {i}"));
                    let want = interpret(&snap, &q).unwrap();
                    assert_eq!(
                        got.fingerprint(),
                        want.fingerprint(),
                        "bg reader {t} query {i} diverged: {q}"
                    );
                }
            });
        }
    });
    reorganizer.stop();
    let stats = engine.stats();
    assert_eq!(stats.rows_appended, (WRITE_BATCHES * BATCH_ROWS) as u64);
    assert_eq!(stats.queries, (READERS * QUERIES_PER_READER) as u64);
    assert_untorn(&engine.snapshot(), "final");
    // Background mode must never reorganize on the query path: every
    // created layout is also a completed background reorg.
    assert_eq!(stats.layouts_created, stats.reorgs_completed);
}

/// Snapshot isolation per execution strategy: concurrent readers pin a
/// snapshot and run the *same* plan through all three strategies (serial
/// and morsel-parallel) while the writer churns the published catalog.
/// All six results must be bit-identical to the oracle on that snapshot.
#[test]
fn all_three_strategies_agree_on_concurrent_snapshots() {
    let engine = shared_engine(EngineConfig::no_compile_latency());
    let parallel_policy = ExecPolicy {
        parallelism: Some(4),
        morsel_rows: 512,
        serial_threshold: 0,
    };
    std::thread::scope(|s| {
        let engine = &engine;
        let parallel_policy = &parallel_policy;
        s.spawn(move || writer_loop(engine));
        for t in 0..READERS {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(stress_seed() ^ (0x5742A7 + t as u64));
                for i in 0..QUERIES_PER_READER / 2 {
                    let q = mixed_query(&mut rng);
                    let snap = engine.snapshot();
                    assert_untorn(&snap, &format!("strategy reader {t} query {i}"));
                    let want = interpret(&snap, &q).unwrap();
                    for strategy in Strategy::ALL {
                        let plan = AccessPlan::new(snap.layout_ids(), strategy);
                        let op = compile(&snap, &plan, &q).unwrap();
                        for policy in [&ExecPolicy::serial(), parallel_policy] {
                            let got = execute_with_policy(&snap, &op, policy).unwrap();
                            assert_eq!(
                                got.fingerprint(),
                                want.fingerprint(),
                                "reader {t} query {i} strategy {} diverged: {q}",
                                strategy.name()
                            );
                        }
                    }
                }
            });
        }
    });
    assert_eq!(
        engine.stats().rows_appended,
        (WRITE_BATCHES * BATCH_ROWS) as u64
    );
}

/// `materialize_now` / `drop_layout` racing readers and pending adaptive
/// groups: explicit administration must never panic a reader, tear a
/// snapshot, or leave `pending()` claiming a spec that already exists.
#[test]
fn explicit_materialize_and_drop_race_readers_safely() {
    let engine = shared_engine(adaptive_config());
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let engine = &engine;
        let stop = &stop;
        // Admin thread: repeatedly materialize a tailored layout, verify
        // pending consistency, then drop it again.
        s.spawn(move || {
            for round in 0..10 {
                let attrs = [AttrId(round % 3), AttrId(3 + round % 3)];
                match engine.materialize_now(&attrs) {
                    Ok(id) => {
                        let spec_attrs: AttrSet = attrs.iter().copied().collect();
                        assert!(
                            engine.pending().iter().all(|g| g.attrs != spec_attrs),
                            "pending() still advertises a spec that was just materialized"
                        );
                        engine.drop_layout(id).unwrap();
                    }
                    Err(e) => panic!("materialize_now failed: {e}"),
                }
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Release);
        });
        for t in 0..2 {
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(stress_seed() ^ (0xD0 + t as u64));
                let mut i = 0;
                while !stop.load(Ordering::Acquire) || i < 20 {
                    let q = mixed_query(&mut rng);
                    let out = engine.run(Request::query(&q)).unwrap();
                    let (snap, got) = (out.snapshot.primary().clone(), out.result);
                    assert_untorn(&snap, &format!("admin-race reader {t} query {i}"));
                    let want = interpret(&snap, &q).unwrap();
                    assert_eq!(got.fingerprint(), want.fingerprint(), "query {i}: {q}");
                    i += 1;
                    if i > 300 {
                        break;
                    }
                }
            });
        }
    });
    assert_untorn(&engine.snapshot(), "final");
}
