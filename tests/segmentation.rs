//! Segmented column-group storage invariants.
//!
//! Two families of guarantees:
//!
//! 1. **Transparency** — segmenting payloads is invisible to every consumer:
//!    a heavily segmented store and a monolithic (one-segment) store are
//!    bit-identical under arbitrary interleavings of append batches, scans
//!    through all three execution strategies, and reorganization.
//! 2. **O(batch) copy-on-write** — appending a small batch against a shared
//!    snapshot clones at most each group's tail segment, bounded by segment
//!    size, never by relation size (the whole point of the segmentation).

use h2o::core::{EngineConfig, H2oEngine};
use h2o::exec::{compile, execute, reorg, AccessPlan, Strategy as ExecStrategy};
use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::storage::{LayoutCatalog, DEFAULT_SEG_SHIFT};
use proptest::prelude::*;

const VALUE_BYTES: u64 = 8;

fn columnar_engine(attrs: usize, rows: usize) -> H2oEngine {
    let schema = Schema::with_width(attrs).into_shared();
    let columns: Vec<Vec<i64>> = (0..attrs)
        .map(|a| {
            (0..rows)
                .map(|r| ((a * 37 + r * 13) % 1009) as i64 - 500)
                .collect()
        })
        .collect();
    let mut cfg = EngineConfig::no_compile_latency();
    // No adaptation interference: the window never completes.
    cfg.window.initial = 10_000;
    cfg.window.max = 10_000;
    H2oEngine::new(Relation::columnar(schema, columns).unwrap(), cfg)
}

/// With a ≥1M-row relation and 3 live layouts, a 1K-row insert clones at
/// most 2 segments per group — verified through the engine's
/// `bytes_cloned_on_write` counter, and cross-checked to be far below
/// relation size.
#[test]
fn small_batch_cow_cost_is_bounded_by_segment_size_not_relation_size() {
    // Not a multiple of the segment capacity, so every group has a
    // partially-filled tail segment for the append to clone.
    let rows = (1usize << 20) + 12_345;
    let attrs = 3; // columnar start → exactly 3 live layouts
    let e = columnar_engine(attrs, rows);
    assert_eq!(e.catalog().group_count(), 3);

    let before = e.snapshot();
    let batch: Vec<Vec<i64>> = (0..1024)
        .map(|i| vec![i as i64, -(i as i64), 2 * i as i64])
        .collect();
    e.insert(&batch).unwrap();

    let stats = e.stats();
    let seg_bytes = (1u64 << DEFAULT_SEG_SHIFT) * VALUE_BYTES; // one width-1 segment
    assert!(
        stats.bytes_cloned_on_write > 0,
        "the shared tails must be cloned"
    );
    assert!(
        stats.bytes_cloned_on_write <= attrs as u64 * 2 * seg_bytes,
        "a 1K-row batch must clone at most 2 segments per group, got {} bytes",
        stats.bytes_cloned_on_write
    );
    let relation_bytes = (rows * attrs) as u64 * VALUE_BYTES;
    assert!(
        stats.bytes_cloned_on_write * 10 < relation_bytes,
        "COW cost must be a small fraction of the relation ({} vs {relation_bytes})",
        stats.bytes_cloned_on_write
    );

    // Snapshot isolation is intact and the batch is fully visible.
    assert_eq!(before.rows(), rows);
    assert_eq!(e.catalog().rows(), rows + 1024);
    assert_eq!(e.catalog().cell(rows + 1023, AttrId(0)).unwrap(), 1023);
    assert_eq!(e.catalog().cell(rows + 1023, AttrId(2)).unwrap(), 2046);
}

#[test]
fn appends_crossing_a_segment_boundary_seal_segments() {
    let rows = (1usize << DEFAULT_SEG_SHIFT) - 10;
    let e = columnar_engine(3, rows);
    let batch: Vec<Vec<i64>> = (0..20).map(|i| vec![i; 3]).collect();
    e.insert(&batch).unwrap();
    let stats = e.stats();
    assert_eq!(stats.segments_sealed, 3, "each group's tail filled once");
    assert!(e.catalog().groups().all(|g| g.segment_count() == 2));
    assert!(e.catalog().groups().all(|g| g.sealed_segment_count() == 1));
}

#[test]
fn multi_segment_scans_match_the_interpreter_for_every_strategy() {
    // > one segment of rows, so every strategy crosses segment boundaries.
    let rows = (1usize << DEFAULT_SEG_SHIFT) + 1_000;
    let e = columnar_engine(4, rows);
    e.materialize_now(&[AttrId(0), AttrId(1), AttrId(2)])
        .unwrap();
    let queries = [
        Query::project(
            [Expr::sum_of([AttrId(0), AttrId(1)])],
            Conjunction::of([Predicate::lt(2u32, 0)]),
        )
        .unwrap(),
        Query::aggregate(
            [
                Aggregate::sum(Expr::col(0u32)),
                Aggregate::min(Expr::col(1u32)),
                Aggregate::max(Expr::col(2u32)),
                Aggregate::count(),
            ],
            Conjunction::of([Predicate::gt(3u32, -250)]),
        )
        .unwrap(),
        Query::aggregate([Aggregate::avg(Expr::col(3u32))], Conjunction::always()).unwrap(),
    ];
    let snap = e.snapshot();
    let layouts = snap.layout_ids();
    for q in &queries {
        let want = interpret(&snap, q).unwrap();
        assert_eq!(
            e.run(Request::query(q)).unwrap().result.fingerprint(),
            want.fingerprint(),
            "{q}"
        );
        for strategy in ExecStrategy::ALL {
            let plan = AccessPlan::new(layouts.clone(), strategy);
            let op = compile(&snap, &plan, q).unwrap();
            let got = execute(&snap, &op).unwrap();
            assert_eq!(
                got.fingerprint(),
                want.fingerprint(),
                "strategy {} query {q}",
                strategy.name()
            );
        }
    }
}

/// One step of the randomized interleaving applied to both stores.
#[derive(Debug, Clone)]
enum Op {
    /// Append a batch of tuples (values filled from the seed).
    Append(Vec<Vec<i64>>),
    /// Scan through one strategy: (strategy index, filter attr, threshold).
    Scan(usize, usize, i64),
    /// Materialize the attribute subset picked by the bitmask and admit it.
    Reorg(u8),
}

fn arb_ops(n_attrs: usize) -> impl Strategy<Value = Vec<Op>> {
    // (kind, batch, strategy, attr, threshold, mask) — the kind selector
    // dispatches which fields are used (the vendored proptest stand-in has
    // no `prop_oneof`).
    let step = (
        0u8..9,
        proptest::collection::vec(
            proptest::collection::vec(-1000i64..1000, n_attrs..=n_attrs),
            1..6,
        ),
        0usize..3,
        0usize..n_attrs,
        -1000i64..1000,
        1u8..15,
    )
        .prop_map(
            |(kind, batch, strategy, attr, threshold, mask)| match kind {
                0..=2 => Op::Append(batch),
                3..=6 => Op::Scan(strategy, attr, threshold),
                _ => Op::Reorg(mask),
            },
        );
    proptest::collection::vec(step, 1..12)
}

fn scan_query(n_attrs: usize, attr: usize, threshold: i64) -> Query {
    Query::project(
        (0..n_attrs).map(|i| Expr::col(i as u32)),
        Conjunction::of([Predicate::lt((attr % n_attrs) as u32, threshold)]),
    )
    .unwrap()
}

fn apply_scan(cat: &LayoutCatalog, strategy: usize, q: &Query) -> u64 {
    let plan = AccessPlan::new(cat.layout_ids(), ExecStrategy::ALL[strategy]);
    let op = compile(cat, &plan, q).unwrap();
    execute(cat, &op).unwrap().fingerprint()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A heavily segmented store (tiny segments, many boundaries) and a
    /// monolithic store (everything in one segment — the pre-segmentation
    /// representation) stay bit-identical under random interleavings of
    /// append batches, scans through all three strategies, and
    /// reorganization. Snapshots taken before every append stay frozen.
    #[test]
    fn segmented_and_monolithic_stores_are_bit_identical(
        n_attrs in 2usize..5,
        rows in 0usize..40,
        seg_shift in 1u32..4,
        ops in arb_ops(4),
    ) {
        let n_attrs = n_attrs.min(4);
        let schema = Schema::with_width(n_attrs).into_shared();
        let columns: Vec<Vec<i64>> = (0..n_attrs)
            .map(|a| (0..rows).map(|r| ((a * 31 + r * 7) % 173) as i64 - 80).collect())
            .collect();
        let partition: Vec<Vec<AttrId>> = (0..n_attrs).map(|a| vec![AttrId::from(a)]).collect();
        let mut seg = Relation::partitioned_with_shift(
            schema.clone(), columns.clone(), partition.clone(), seg_shift,
        ).unwrap().into_catalog();
        let mut mono = Relation::partitioned_with_shift(
            schema, columns, partition, 30, // whole store in one segment
        ).unwrap().into_catalog();

        // Snapshots a concurrent reader would hold across the writes.
        let mut pinned: Vec<(LayoutCatalog, usize)> = Vec::new();

        for op in &ops {
            match op {
                Op::Append(batch) => {
                    let batch: Vec<Vec<i64>> = batch
                        .iter()
                        .map(|t| t[..n_attrs].to_vec())
                        .collect();
                    pinned.push((seg.clone(), seg.rows()));
                    pinned.push((mono.clone(), mono.rows()));
                    seg.append_rows(&batch).unwrap();
                    mono.append_rows(&batch).unwrap();
                }
                Op::Scan(strategy, attr, threshold) => {
                    let q = scan_query(n_attrs, *attr, *threshold);
                    let a = apply_scan(&seg, *strategy, &q);
                    let b = apply_scan(&mono, *strategy, &q);
                    prop_assert_eq!(a, b, "scan diverged");
                    prop_assert_eq!(a, interpret(&mono, &q).unwrap().fingerprint());
                }
                Op::Reorg(mask) => {
                    let attrs: Vec<AttrId> = (0..n_attrs)
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(AttrId::from)
                        .collect();
                    if attrs.is_empty() {
                        continue;
                    }
                    let ga = reorg::materialize(&seg, &attrs).unwrap();
                    let gb = reorg::materialize(&mono, &attrs).unwrap();
                    prop_assert_eq!(ga.collect_values(), gb.collect_values());
                    seg.add_group(ga, 0).unwrap();
                    mono.add_group(gb, 0).unwrap();
                }
            }
        }

        // Final state: same shape, same payloads, layout by layout.
        prop_assert_eq!(seg.rows(), mono.rows());
        prop_assert_eq!(seg.group_count(), mono.group_count());
        for (a, b) in seg.layout_ids().iter().zip(mono.layout_ids()) {
            prop_assert_eq!(
                seg.group(*a).unwrap().collect_values(),
                mono.group(b).unwrap().collect_values()
            );
        }
        // Pinned snapshots never moved (copy-on-write correctness).
        for (snap, rows_at_pin) in &pinned {
            prop_assert_eq!(snap.rows(), *rows_at_pin);
            for g in snap.groups() {
                prop_assert_eq!(g.rows(), *rows_at_pin);
            }
        }
    }
}
