//! Morsel-parallel execution must be **bit-identical** to serial execution:
//! same rows, same order, same aggregate values — for every strategy, every
//! query shape, every layout, any morsel size and any worker count.

use h2o::core::{EngineConfig, H2oEngine};
use h2o::exec::{compile, execute, execute_with_policy, reorg, AccessPlan, ExecPolicy, Strategy};
use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::workload::synth::{gen_columns, threshold_for_selectivity};

const ROWS: usize = 5_000;
const ATTRS: usize = 8;

fn relations() -> Vec<(&'static str, Relation)> {
    let schema = Schema::with_width(ATTRS).into_shared();
    let columns = gen_columns(ATTRS, ROWS, 77);
    vec![
        (
            "columnar",
            Relation::columnar(schema.clone(), columns.clone()).unwrap(),
        ),
        (
            "row-major",
            Relation::row_major(schema.clone(), columns.clone()).unwrap(),
        ),
        (
            "grouped",
            Relation::partitioned(
                schema,
                columns,
                vec![
                    vec![AttrId(0), AttrId(1), AttrId(2)],
                    vec![AttrId(3), AttrId(4)],
                    vec![AttrId(5)],
                    vec![AttrId(6), AttrId(7)],
                ],
            )
            .unwrap(),
        ),
    ]
}

/// Query shapes covering: single/multi expression projections, bare-column
/// and expression aggregates, every aggregate function, 0/1/2 predicates.
fn queries() -> Vec<Query> {
    let filt = |s: f64| Conjunction::of([Predicate::lt(0u32, threshold_for_selectivity(s))]);
    let two_pred = |s: f64| {
        let t = threshold_for_selectivity(s);
        Conjunction::of([Predicate::lt(0u32, t), Predicate::gt(1u32, -t)])
    };
    vec![
        // Projections.
        Query::project([Expr::sum_of([AttrId(2), AttrId(3), AttrId(4)])], filt(0.3)).unwrap(),
        Query::project(
            [Expr::col(5u32), Expr::col(6u32).mul(Expr::lit(3))],
            two_pred(0.7),
        )
        .unwrap(),
        Query::project([Expr::col(7u32)], Conjunction::always()).unwrap(),
        Query::project([Expr::col(2u32)], filt(0.0)).unwrap(), // empty result
        Query::project([Expr::col(2u32)], filt(0.01)).unwrap(), // very sparse
        // Aggregates: every function, bare columns (specialized tiers).
        Query::aggregate(
            [
                Aggregate::sum(Expr::col(2u32)),
                Aggregate::min(Expr::col(3u32)),
                Aggregate::max(Expr::col(4u32)),
                Aggregate::count(),
                Aggregate::avg(Expr::col(5u32)),
            ],
            filt(0.5),
        )
        .unwrap(),
        // Dense same-function run over adjacent attrs (the tightest tier).
        Query::aggregate(
            [
                Aggregate::max(Expr::col(2u32)),
                Aggregate::max(Expr::col(3u32)),
                Aggregate::max(Expr::col(4u32)),
            ],
            two_pred(0.4),
        )
        .unwrap(),
        // Expression aggregate (generic state path).
        Query::aggregate(
            [Aggregate::sum(Expr::col(2u32).mul(Expr::col(3u32)))],
            filt(0.6),
        )
        .unwrap(),
        // No-filter bare-column aggregate (column-store streaming path).
        Query::aggregate(
            [
                Aggregate::min(Expr::col(6u32)),
                Aggregate::sum(Expr::col(7u32)),
            ],
            Conjunction::always(),
        )
        .unwrap(),
        // Filter with zero and full selectivity on aggregates.
        Query::aggregate([Aggregate::count()], filt(0.0)).unwrap(),
        Query::aggregate([Aggregate::avg(Expr::col(4u32))], filt(1.0)).unwrap(),
    ]
}

fn policies() -> Vec<(&'static str, ExecPolicy)> {
    let p = |threads: usize, morsel: usize| ExecPolicy {
        parallelism: Some(threads),
        morsel_rows: morsel,
        serial_threshold: 0,
    };
    vec![
        ("serial-explicit", p(1, 1_000)),
        ("two-workers", p(2, 577)),
        ("four-workers", p(4, 1_024)),
        ("many-tiny-morsels", p(4, 64)),
        ("morsel-larger-than-relation", p(4, ROWS * 2)),
        ("eight-workers-odd-morsel", p(8, 999)),
        (
            "threshold-forces-serial",
            ExecPolicy {
                parallelism: Some(8),
                morsel_rows: 256,
                serial_threshold: ROWS,
            },
        ),
    ]
}

#[test]
fn parallel_matches_serial_for_every_strategy_and_shape() {
    for (layout, rel) in relations() {
        let layouts = rel.catalog().layout_ids();
        for (qi, q) in queries().iter().enumerate() {
            let want_interp = interpret(rel.catalog(), q).unwrap();
            for strategy in Strategy::ALL {
                let plan = AccessPlan::new(layouts.clone(), strategy);
                let op = compile(rel.catalog(), &plan, q).unwrap();
                let serial = execute(rel.catalog(), &op).unwrap();
                // Serial must agree with the interpreter (sanity anchor).
                assert_eq!(
                    serial.fingerprint(),
                    want_interp.fingerprint(),
                    "layout {layout} strategy {} query {qi}",
                    strategy.name()
                );
                for (pname, policy) in policies() {
                    let parallel = execute_with_policy(rel.catalog(), &op, &policy).unwrap();
                    // Bit-identical: same width, same rows, same order.
                    assert_eq!(
                        parallel,
                        serial,
                        "layout {layout} strategy {} query {qi} policy {pname}",
                        strategy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_reorganization_is_byte_identical() {
    let (_, rel) = relations().into_iter().next_back().unwrap();
    let targets: Vec<AttrId> = vec![AttrId(4), AttrId(1), AttrId(6)];
    let q = Query::aggregate(
        [
            Aggregate::sum(Expr::sum_of([AttrId(4), AttrId(1)])),
            Aggregate::count(),
        ],
        Conjunction::of([Predicate::gt(6u32, 0)]),
    )
    .unwrap();
    let (serial_group, serial_result) =
        reorg::reorg_and_execute(rel.catalog(), &targets, &q).unwrap();
    let serial_offline = reorg::materialize(rel.catalog(), &targets).unwrap();
    let serial_rowwise = reorg::materialize_rowwise(rel.catalog(), &targets).unwrap();
    for (pname, policy) in policies() {
        let (g, r) = reorg::reorg_and_execute_with(rel.catalog(), &targets, &q, &policy).unwrap();
        assert_eq!(
            g.collect_values(),
            serial_group.collect_values(),
            "online group, policy {pname}"
        );
        assert_eq!(r, serial_result, "online result, policy {pname}");
        let off = reorg::materialize_with(rel.catalog(), &targets, &policy).unwrap();
        assert_eq!(
            off.collect_values(),
            serial_offline.collect_values(),
            "offline, policy {pname}"
        );
        let row = reorg::materialize_rowwise_with(rel.catalog(), &targets, &policy).unwrap();
        assert_eq!(
            row.collect_values(),
            serial_rowwise.collect_values(),
            "rowwise, policy {pname}"
        );
    }
    // Projection-shaped online reorg too.
    let qp = Query::project(
        [Expr::col(4u32), Expr::col(1u32)],
        Conjunction::of([Predicate::le(1u32, 0)]),
    )
    .unwrap();
    let (sg, sr) = reorg::reorg_and_execute(rel.catalog(), &targets, &qp).unwrap();
    for (pname, policy) in policies() {
        let (g, r) = reorg::reorg_and_execute_with(rel.catalog(), &targets, &qp, &policy).unwrap();
        assert_eq!(
            g.collect_values(),
            sg.collect_values(),
            "online projection group, policy {pname}"
        );
        assert_eq!(r, sr, "online projection result, policy {pname}");
    }
}

#[test]
fn parallel_engine_agrees_with_interpreter_through_adaptation() {
    // A full adaptive run with the parallel path forced on (threshold 0,
    // small morsels, several workers): every answer must still match the
    // reference interpreter, including the queries that trigger online
    // reorganization.
    let schema = Schema::with_width(12).into_shared();
    let columns = gen_columns(12, 3_000, 5);
    let mut cfg = EngineConfig::no_compile_latency();
    cfg.window.initial = 8;
    cfg.window.min = 4;
    cfg.parallelism = Some(4);
    cfg.morsel_rows = 256;
    cfg.parallel_row_threshold = 0;
    let engine = H2oEngine::new(Relation::columnar(schema, columns).unwrap(), cfg);
    for i in 0..40 {
        let q = Query::project(
            [Expr::sum_of([AttrId(0), AttrId(1), AttrId(2), AttrId(3)])],
            Conjunction::of([Predicate::lt(
                4u32,
                threshold_for_selectivity(0.1 * (i % 10) as f64),
            )]),
        )
        .unwrap();
        let want = interpret(&engine.catalog(), &q).unwrap();
        let got = engine.run(Request::query(&q)).unwrap().result;
        assert_eq!(got, want, "query {i}");
    }
    assert!(
        engine.stats().layouts_created >= 1,
        "the run must exercise parallel online reorganization; stats: {:?}",
        engine.stats()
    );
}

#[test]
fn parallelism_one_is_the_serial_path() {
    // `Some(1)` must behave exactly like the serial entry point even with
    // absurd morsel configurations.
    let (_, rel) = relations().into_iter().next().unwrap();
    let q = queries().into_iter().next().unwrap();
    let plan = AccessPlan::new(rel.catalog().layout_ids(), Strategy::SelVector);
    let op = compile(rel.catalog(), &plan, &q).unwrap();
    let serial = execute(rel.catalog(), &op).unwrap();
    for morsel in [1usize, 3, ROWS, ROWS * 10] {
        let policy = ExecPolicy {
            parallelism: Some(1),
            morsel_rows: morsel,
            serial_threshold: 0,
        };
        assert_eq!(
            execute_with_policy(rel.catalog(), &op, &policy).unwrap(),
            serial,
            "morsel_rows={morsel}"
        );
    }
}
