//! The engine's core invariant: **every execution strategy, every layout
//! combination, and every adaptation state returns the same answer.**
//!
//! Random relations + random query workloads are run through the adaptive
//! engine, both static baselines, and the reference interpreter; all four
//! must agree before, during, and after layout reorganization.

use h2o::core::{EngineConfig, H2oEngine, StaticEngine, StaticKind};
use h2o::exec::CompileCostModel;
use h2o::expr::interpret;
use h2o::prelude::*;
use h2o::workload::micro::{QueryGen, Template};
use h2o::workload::synth::gen_columns;
use proptest::prelude::*;

fn engines(n_attrs: usize, rows: usize, seed: u64) -> (H2oEngine, StaticEngine, StaticEngine) {
    let schema = Schema::with_width(n_attrs).into_shared();
    let columns = gen_columns(n_attrs, rows, seed);
    let h2o = {
        let mut cfg = EngineConfig::no_compile_latency();
        cfg.window.initial = 8;
        cfg.window.min = 4;
        H2oEngine::new(
            Relation::columnar(schema.clone(), columns.clone()).unwrap(),
            cfg,
        )
    };
    let row = StaticEngine::new(
        schema.clone(),
        columns.clone(),
        StaticKind::RowStore,
        CompileCostModel::ZERO,
    )
    .unwrap();
    let col = StaticEngine::new(
        schema,
        columns,
        StaticKind::ColumnStore,
        CompileCostModel::ZERO,
    )
    .unwrap();
    (h2o, row, col)
}

#[test]
fn all_engines_agree_across_a_long_adaptive_run() {
    let (h2o, row, col) = engines(24, 2_000, 99);
    let mut gen = QueryGen::new(24, 5);
    for i in 0..120 {
        let template = Template::ALL[i % 3];
        let k = 2 + (i % 8);
        let n_preds = i % 3;
        let sel = [0.0, 0.01, 0.3, 0.7, 1.0][i % 5];
        let (q, _) = gen.random(template, k, n_preds, sel);
        let want = interpret(col.relation().catalog(), &q)
            .unwrap()
            .fingerprint();
        assert_eq!(
            h2o.run(Request::query(&q)).unwrap().result.fingerprint(),
            want,
            "H2O diverged at query {i}: {q}"
        );
        assert_eq!(
            row.execute(&q).unwrap().fingerprint(),
            want,
            "row store diverged at query {i}: {q}"
        );
        assert_eq!(
            col.execute(&q).unwrap().fingerprint(),
            want,
            "column store diverged at query {i}: {q}"
        );
    }
    // The run must have actually exercised adaptation for the test to mean
    // anything.
    assert!(h2o.stats().adaptations > 0);
}

#[test]
fn agreement_survives_explicit_reorganizations() {
    let (h2o, _, col) = engines(12, 1_000, 3);
    let q = Query::aggregate(
        [
            Aggregate::sum(Expr::sum_of([AttrId(0), AttrId(1)])),
            Aggregate::max(Expr::col(2u32)),
        ],
        Conjunction::of([Predicate::gt(3u32, 0)]),
    )
    .unwrap();
    let want = interpret(col.relation().catalog(), &q).unwrap();
    assert_eq!(h2o.run(Request::query(&q)).unwrap().result, want);
    // Materialize several overlapping layouts by hand; answers must hold.
    h2o.materialize_now(&[AttrId(0), AttrId(1), AttrId(2), AttrId(3)])
        .unwrap();
    assert_eq!(h2o.run(Request::query(&q)).unwrap().result, want);
    h2o.materialize_now(&[AttrId(3), AttrId(2)]).unwrap();
    assert_eq!(h2o.run(Request::query(&q)).unwrap().result, want);
    // Same data now lives in three formats simultaneously.
    assert!(h2o.catalog().group_count() >= 14);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random query agrees between the interpreter, the adaptive engine
    /// and both static engines, for random (small) relations.
    #[test]
    fn random_queries_agree(
        seed in 0u64..1000,
        k in 1usize..6,
        n_preds in 0usize..3,
        sel in 0.0f64..1.0,
        template_idx in 0usize..3,
        rows in 1usize..400,
    ) {
        let n_attrs = 10;
        let (h2o, row, col) = engines(n_attrs, rows, seed);
        let mut gen = QueryGen::new(n_attrs, seed ^ 0xdead);
        let (q, _) = gen.random(Template::ALL[template_idx], k, n_preds.min(k), sel);
        let want = interpret(col.relation().catalog(), &q).unwrap().fingerprint();
        prop_assert_eq!(h2o.run(Request::query(&q)).unwrap().result.fingerprint(), want);
        prop_assert_eq!(row.execute(&q).unwrap().fingerprint(), want);
        prop_assert_eq!(col.execute(&q).unwrap().fingerprint(), want);
    }
}
