//! Offline partitioning baselines: AutoPart against the brute-force
//! optimum, and both against the adaptive adviser's objective.

use h2o::cost::{AccessPattern, CostModel};
use h2o::partition::{brute_force, is_valid_partition, partition_cost, AutoPart};
use h2o::prelude::*;
use proptest::prelude::*;

fn pattern(select: &[usize], where_: &[usize], sel: f64) -> AccessPattern {
    AccessPattern {
        select: select.iter().copied().collect(),
        where_: where_.iter().copied().collect(),
        selectivity: sel,
        output_width: 1,
        select_ops: (2 * select.len()).saturating_sub(1).max(1),
        is_aggregate: false,
        is_grouped: false,
    }
}

#[test]
fn autopart_close_to_optimal_on_structured_workloads() {
    let model = CostModel::default();
    let rows = 200_000;
    // Three structured workloads with known-good fragmentations.
    let workloads: Vec<Vec<AccessPattern>> = vec![
        // Two disjoint hot pairs.
        (0..6)
            .flat_map(|_| vec![pattern(&[0, 1], &[4], 0.3), pattern(&[2, 3], &[5], 0.3)])
            .collect(),
        // One hot cluster, cold tail.
        (0..8).map(|_| pattern(&[0, 1, 2], &[3], 0.2)).collect(),
        // Full-width scans only.
        (0..4)
            .map(|_| pattern(&[0, 1, 2, 3, 4, 5], &[], 1.0))
            .collect(),
    ];
    for (i, w) in workloads.iter().enumerate() {
        let (_, opt_cost) = brute_force(&model, w, 6, rows);
        let ap = AutoPart::default();
        let parts = ap.partition(w, 6, rows);
        assert!(is_valid_partition(&parts, 6));
        let ap_cost = ap.cost(w, &parts, rows);
        // AutoPart's categorization cannot split attributes with identical
        // query-access vectors, but the true optimum sometimes separates
        // select-clause from where-clause attributes (the advantage H2O's
        // two affinity matrices exploit, §3.2 — and part of what Fig. 8
        // measures). Allow the structural gap, bound it at 1.5x.
        assert!(
            ap_cost <= opt_cost * 1.5 + 1e-12,
            "workload {i}: AutoPart {ap_cost} vs optimal {opt_cost}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// AutoPart always emits a valid fragmentation and never beats the
    /// exhaustive optimum.
    #[test]
    fn autopart_valid_and_bounded_by_oracle(
        seed in 0u64..500,
        n_queries in 1usize..8,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let n_attrs = 5;
        let workload: Vec<AccessPattern> = (0..n_queries)
            .map(|_| {
                let k = rng.gen_range(1..=n_attrs);
                let select: Vec<usize> = (0..k).collect();
                let where_: Vec<usize> = if rng.gen_bool(0.5) {
                    vec![rng.gen_range(0..n_attrs)]
                } else {
                    vec![]
                };
                pattern(&select, &where_, rng.gen_range(0.01..1.0))
            })
            .collect();
        let model = CostModel::default();
        let rows = 100_000;
        let ap = AutoPart::default();
        let parts = ap.partition(&workload, n_attrs, rows);
        prop_assert!(is_valid_partition(&parts, n_attrs));
        let (_, opt) = brute_force(&model, &workload, n_attrs, rows);
        let heuristic = partition_cost(&model, &workload, &parts, rows);
        prop_assert!(heuristic + 1e-12 >= opt, "heuristic {heuristic} < optimal {opt}");
    }
}

#[test]
fn autopart_partition_usable_as_relation_layout() {
    // The fragments AutoPart emits must construct a working relation whose
    // engine answers match the interpreter's.
    use h2o::core::{EngineConfig, H2oEngine};
    use h2o::expr::interpret;
    use h2o::workload::synth::gen_columns;

    let n_attrs = 10;
    let rows = 1_000;
    let workload: Vec<AccessPattern> = (0..10).map(|_| pattern(&[0, 1, 2], &[9], 0.3)).collect();
    let ap = AutoPart::default();
    let parts = ap.partition(&workload, n_attrs, rows);
    let partition: Vec<Vec<AttrId>> = parts.iter().map(|p| p.to_vec()).collect();

    let schema = Schema::with_width(n_attrs).into_shared();
    let columns = gen_columns(n_attrs, rows, 17);
    let rel = Relation::partitioned(schema, columns, partition).unwrap();
    assert!(rel.catalog().covers_schema());

    let engine = H2oEngine::new(rel, EngineConfig::non_adaptive());
    let q = Query::aggregate(
        [Aggregate::sum(Expr::sum_of([
            AttrId(0),
            AttrId(1),
            AttrId(2),
        ]))],
        Conjunction::of([Predicate::lt(9u32, 0)]),
    )
    .unwrap();
    let want = interpret(&engine.catalog(), &q).unwrap();
    assert_eq!(engine.run(Request::query(&q)).unwrap().result, want);
}
