//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — as a
//! plain wall-clock timing harness. Each benchmark runs one warm-up
//! iteration plus `sample_size` timed iterations and prints
//! mean/min seconds (and derived throughput) to stdout. No statistics, no
//! HTML reports, no regression tracking.

use std::fmt;
use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark id (`function/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration of the last `iter` call.
    last_mean: f64,
    /// Min seconds per iteration of the last `iter` call.
    last_min: f64,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `samples` timed calls.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f()); // warm-up
        let mut total = 0.0;
        let mut min = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(&out);
            total += dt;
            min = min.min(dt);
        }
        self.last_mean = total / self.samples as f64;
        self.last_min = min;
    }
}

/// The top-level harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_one(self.sample_size, name, None, f);
    }
}

/// A named benchmark group with optional throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.sample_size, &label, self.throughput, f);
    }

    /// Runs a benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.sample_size, &label, self.throughput, |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; reports were printed as benchmarks ran).
    pub fn finish(self) {}
}

fn run_one(
    samples: usize,
    label: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        last_mean: 0.0,
        last_min: 0.0,
    };
    f(&mut b);
    let extra = match throughput {
        Some(Throughput::Elements(n)) if b.last_mean > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / b.last_mean / 1e6)
        }
        Some(Throughput::Bytes(n)) if b.last_mean > 0.0 => {
            format!("  {:.3} MiB/s", n as f64 / b.last_mean / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "bench {label:<48} mean {:>12.6}s  min {:>12.6}s{extra}",
        b.last_mean, b.last_min
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        g.bench_function("in_group", |b| b.iter(|| (0..100).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
