//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace's tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`any`], the
//! [`ProptestConfig`](test_runner::ProptestConfig) case count, and the
//! `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Semantics: each `#[test]` inside `proptest!` runs `cases` iterations
//! with inputs sampled from the strategies using a deterministic per-test
//! RNG (seeded from the test's name). There is **no shrinking** — a
//! failing case panics with the sampled inputs' `Debug` representation so
//! it can be reproduced by reading the message.

use rand::rngs::SmallRng;

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case values.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Samples one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and samples
        /// from the produced strategy (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut SmallRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

    /// The `any::<T>()` strategy (arbitrary values of `T`).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// A fixed value ("just" in proptest terms).
    #[derive(Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

/// Builds the `any::<T>()` strategy.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` sampled inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The commonly used names in one import.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    /// `prop::collection::...` paths as in the real crate.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Deterministic per-test RNG (seeded from the test name).
#[doc(hidden)]
pub fn test_rng(name: &str) -> SmallRng {
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    SmallRng::seed_from_u64(h.finish() ^ 0x5eed_cafe_f00d_beef)
}

/// Rejects the current case (sampled inputs violate a precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return; // skip this case
        }
    };
}

/// Asserts inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` sampled inputs (the `#[test]` attribute the
/// caller writes passes through as one of the `$meta`s).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused)]
                use $crate::strategy::Strategy as _;
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = ($strat).sample(&mut rng);)*
                    let inputs = format!(
                        concat!("case {} of ", stringify!($name), ":" $(, " ", stringify!($arg), "={:?}")*),
                        case $(, &$arg)*
                    );
                    let run = move || { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!("proptest failure [{inputs}]");
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections(
            x in -50i64..50,
            v in crate::collection::vec(0usize..10, 3..=5),
            flag in any::<bool>(),
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((3..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
            let _ = flag;
        }

        #[test]
        fn flat_map_dependent_sizes(
            cols in (1usize..4, 0usize..20).prop_flat_map(|(n, rows)| {
                crate::collection::vec(
                    crate::collection::vec(-10i64..10, rows..=rows),
                    n..=n,
                )
            }),
        ) {
            let rows = cols[0].len();
            prop_assert!(cols.iter().all(|c| c.len() == rows));
        }

        #[test]
        fn assume_skips(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let a: Vec<u64> = {
            let mut r = crate::test_rng("t");
            (0..8).map(|_| r.gen_range(0u64..1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::test_rng("t");
            (0..8).map(|_| r.gen_range(0u64..1000)).collect()
        };
        assert_eq!(a, b);
    }
}
