//! Minimal offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! Provides exactly what the workspace uses: [`rngs::SmallRng`] (a
//! deterministic xoshiro256** generator seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom`]
//! (`shuffle`/`choose`). Streams are deterministic per seed — the only
//! property the workload generators and tests rely on — but are *not*
//! bit-compatible with the real `rand` crate.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// A uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((lo as i128).wrapping_add(v as i128)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128) + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((lo as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi + f64::EPSILON * hi.abs().max(1.0))
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real SmallRng seeds itself.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling helpers.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<i64> = (0..32).map(|_| a.gen_range(-1000i64..1000)).collect();
        let ys: Vec<i64> = (0..32).map(|_| b.gen_range(-1000i64..1000)).collect();
        let zs: Vec<i64> = (0..32).map(|_| c.gen_range(-1000i64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_i64_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let _ = rng.gen_range(i64::MIN..i64::MAX);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        let hits = (0..4000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((1600..2400).contains(&hits), "p=0.5 gave {hits}/4000");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
