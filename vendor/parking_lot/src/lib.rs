//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] whose lock methods return guards directly
//! (no `Result`) — implemented over `std::sync`. Poisoning is ignored,
//! matching `parking_lot` semantics (a panicking holder does not poison).

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
